#include "data/surrogates.h"

#include <algorithm>

#include "data/shapes.h"
#include "data/synthetic.h"

namespace dbsvec {
namespace {

/// Gaussian-blob family surrogate (UCI-style feature datasets).
Dataset Blobs(PointIndex n, int dim, int clusters, double stddev,
              double noise_fraction, uint64_t seed) {
  GaussianBlobsParams params;
  params.n = n;
  params.dim = dim;
  params.num_clusters = clusters;
  params.domain = 100.0;
  params.stddev = stddev;
  params.noise_fraction = noise_fraction;
  params.seed = seed;
  return GenerateGaussianBlobs(params);
}

/// Random-walk family surrogate (map data / sensor streams: elongated,
/// irregular clusters).
Dataset Walks(PointIndex n, int dim, int clusters, double noise_fraction,
              uint64_t seed) {
  RandomWalkParams params;
  params.n = n;
  params.dim = dim;
  params.num_clusters = clusters;
  params.domain = 1e5;
  params.noise_fraction = noise_fraction;
  params.seed = seed;
  return GenerateRandomWalk(params);
}

PointIndex Clamp(PointIndex paper_n, PointIndex max_points) {
  return max_points > 0 ? std::min(paper_n, max_points) : paper_n;
}

}  // namespace

std::vector<std::string> AccuracySurrogateNames() {
  return {"Seeds", "Map-Joensuu", "Map-Finland", "Breast", "House",
          "Miss",  "Dim32",       "Dim64",       "D31",    "t4.8k",
          "t7.10k"};
}

std::vector<std::string> EfficiencySurrogateNames() {
  return {"PAMAP2", "Sensors", "Corel"};
}

Status MakeSurrogate(std::string_view name, SurrogateDataset* out,
                     PointIndex max_points) {
  out->name = std::string(name);
  out->min_pts = 8;
  bool calibrate = true;

  if (name == "Seeds") {
    // 210×7, 3 wheat varieties.
    out->data = Blobs(Clamp(210, max_points), 7, 3, 1.2, 0.0, 101);
    out->min_pts = 5;
  } else if (name == "Map-Joensuu") {
    // 6014×2 GPS points: clumped irregular street/town shapes.
    out->data = Walks(Clamp(6014, max_points), 2, 8, 0.01, 102);
  } else if (name == "Map-Finland") {
    // 13467×2 GPS points.
    out->data = Walks(Clamp(13467, max_points), 2, 15, 0.01, 103);
  } else if (name == "Breast") {
    // 669×9, two diagnostic groups.
    out->data = Blobs(Clamp(669, max_points), 9, 2, 2.0, 0.01, 104);
    out->min_pts = 5;
  } else if (name == "House") {
    // 34112×3, RGB colour tuples.
    out->data = Walks(Clamp(34112, max_points), 3, 10, 0.005, 105);
  } else if (name == "Miss") {
    // 6480×16, video block features.
    out->data = Blobs(Clamp(6480, max_points), 16, 8, 1.5, 0.005, 106);
  } else if (name == "Dim32") {
    // 1024×32, 16 well-separated Gaussian clusters (Fränti benchmark).
    out->data = Blobs(Clamp(1024, max_points), 32, 16, 1.0, 0.0, 107);
    out->min_pts = 5;
  } else if (name == "Dim64") {
    // 1024×64, 16 well-separated Gaussian clusters.
    out->data = Blobs(Clamp(1024, max_points), 64, 16, 1.0, 0.0, 108);
    out->min_pts = 5;
  } else if (name == "D31") {
    // 3100×2, 31 Gaussian clusters of 100 points [35].
    out->data = Blobs(Clamp(3100, max_points), 2, 31, 0.9, 0.0, 109);
    out->min_pts = 5;
  } else if (name == "t4.8k") {
    // 8000×2 chameleon scene; the paper uses MinPts=20, ε=8.5.
    out->data = GenerateShapeScene(ShapeScene::kT4, Clamp(8000, max_points),
                                   110);
    out->min_pts = 20;
  } else if (name == "t7.10k") {
    out->data = GenerateShapeScene(ShapeScene::kT7,
                                   Clamp(10'000, max_points), 111);
    out->min_pts = 20;
  } else if (name == "PAMAP2") {
    // 1,050,199×17 physical-activity monitoring: a dozen activity modes
    // traced by slowly drifting sensor readings.
    out->data = Walks(Clamp(1'050'199, max_points), 17, 12, 0.002, 112);
    out->min_pts = 100;
  } else if (name == "Sensors") {
    // 919,438×11 sensor readings.
    out->data = Walks(Clamp(919'438, max_points), 11, 10, 0.002, 113);
    out->min_pts = 100;
  } else if (name == "Corel") {
    // 68,040×32 Corel image features.
    out->data = Blobs(Clamp(68'040, max_points), 32, 20, 1.2, 0.002, 114);
    out->min_pts = 100;
  } else {
    return Status::NotFound("unknown surrogate dataset: " +
                            std::string(name));
  }

  if (calibrate) {
    out->epsilon = SuggestEpsilon(out->data, out->min_pts);
  }
  return Status::Ok();
}

}  // namespace dbsvec
