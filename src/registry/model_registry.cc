#include "registry/model_registry.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "fault/failpoint.h"
#include "model/dbsvec_model.h"
#include "model/serialize.h"
#include "registry/model_name.h"

namespace dbsvec::registry {
namespace {

constexpr const char* kBaseModelFile = "model.dbsvec";
constexpr const char* kSnapshotFile = "snapshot.dbsvec";
constexpr const char* kJournalFile = "overlay.journal";

bool FileExists(const std::string& path) {
  struct stat st{};
  return !path.empty() && ::stat(path.c_str(), &st) == 0;
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return Status::IoError("registry: mkdir " + path + ": " +
                         std::strerror(errno));
}

/// Best-effort unlink; ENOENT is success (the goal state).
void RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    // Deletion is best-effort cleanup after the entry already left the
    // serving map; a stray file only wastes disk until the next create.
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ModelEntry

ModelEntry::ModelEntry(std::string name,
                       std::shared_ptr<AssignmentEngine> engine,
                       std::shared_ptr<OverlayJournal> journal,
                       server::DurabilityOptions durability,
                       server::RecoveryReport recovery,
                       std::string base_model_path, bool managed_base,
                       AssignmentOptions engine_options,
                       server::RetryOptions retry)
    : name_(std::move(name)),
      handle_(std::move(engine)),
      journal_(std::move(journal)),
      durability_(std::move(durability)),
      recovery_(recovery),
      base_model_path_(std::move(base_model_path)),
      managed_base_(managed_base),
      engine_options_(engine_options),
      retry_(retry) {}

void ModelEntry::DetachJournal() {
  if (journal_ != nullptr) {
    handle_.Get()->AttachJournal(nullptr);
  }
}

Status ModelEntry::Reload(const std::string& path, const Deadline& deadline,
                          server::RetryReport* report) {
  std::lock_guard<std::mutex> serialize(reload_mutex_);
  server::RetryReport local;
  server::RetryReport& out = report != nullptr ? *report : local;
  const server::RetryPolicy policy(retry_);
  const Status status = policy.Run(
      "reload " + name_ + " <- " + path, deadline,
      [&]() -> Status {
        DBSVEC_RETURN_IF_ERROR(FailpointCheck("server.reload"));
        if (journal_ == nullptr) {
          return handle_.LoadAndSwap(path, engine_options_, deadline);
        }
        // Durable swap: build the replacement fully off to the side,
        // import it into the layout (restart must recover what reload
        // installed), then rebind the journal to the new identity before
        // it starts serving. A reloaded model starts with an empty
        // overlay, so the journal restarts empty too.
        AssignmentOptions build_options = engine_options_;
        build_options.online_refresh = true;
        build_options.build_deadline = deadline;
        std::unique_ptr<AssignmentEngine> next;
        DBSVEC_RETURN_IF_ERROR(
            AssignmentEngine::Load(path, build_options, &next));
        if (managed_base_ && path != base_model_path_) {
          std::vector<uint8_t> bytes;
          DBSVEC_RETURN_IF_ERROR(ReadFileBytes(path, &bytes));
          DBSVEC_RETURN_IF_ERROR(
              WriteFileBytesAtomic(base_model_path_, bytes, "model.save"));
        }
        std::shared_ptr<AssignmentEngine> old = handle_.Get();
        old->AttachJournal(nullptr);
        if (Status reset = journal_->Reset(next->model_crc()); !reset.ok()) {
          // The old engine keeps serving — keep journaling it.
          old->AttachJournal(journal_);
          return reset;
        }
        next->AttachJournal(journal_);
        handle_.Swap(std::move(next));
        return Status::Ok();
      },
      &out);
  stats.reload_attempts.fetch_add(static_cast<uint64_t>(out.attempts),
                                  std::memory_order_relaxed);
  if (status.ok()) {
    stats.reloads_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats.reloads_failed.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

Status ModelEntry::Snapshot(uint32_t* snapshot_crc, uint64_t* folded_records) {
  if (!durability_.enabled) {
    return Status::FailedPrecondition("snapshot: model '" + name_ +
                                      "' is not durable");
  }
  std::lock_guard<std::mutex> serialize(reload_mutex_);
  const Status status = handle_.Get()->Checkpoint(durability_.snapshot_path,
                                                  snapshot_crc,
                                                  folded_records);
  if (status.ok()) {
    stats.checkpoints_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats.checkpoints_failed.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

// ---------------------------------------------------------------------------
// ModelRegistry

ModelRegistry::ModelRegistry(RegistryOptions options)
    : options_(std::move(options)) {}

std::string ModelRegistry::ModelDir(std::string_view name) const {
  return options_.data_dir + "/" + std::string(name);
}

Status ModelRegistry::BuildEntry(const std::string& name,
                                 const std::string& model_path,
                                 std::shared_ptr<ModelEntry>* out) const {
  server::DurabilityOptions durability;
  durability.enabled = options_.durable && !options_.data_dir.empty();
  if (durability.enabled) {
    const std::string dir = ModelDir(name);
    durability.snapshot_path = dir + "/" + kSnapshotFile;
    durability.journal_path = dir + "/" + kJournalFile;
    durability.fsync = options_.fsync;
    durability.fsync_interval_ms = options_.fsync_interval_ms;
    durability.checkpoint_interval_ms = options_.checkpoint_interval_ms;
  }
  std::unique_ptr<AssignmentEngine> engine;
  std::shared_ptr<OverlayJournal> journal;
  server::RecoveryReport recovery;
  DBSVEC_RETURN_IF_ERROR(server::RecoverEngine(model_path, durability,
                                               options_.engine_options,
                                               options_.retry, &engine,
                                               &journal, &recovery));
  const bool managed =
      !options_.data_dir.empty() && model_path == ModelDir(name) + "/" +
                                                      kBaseModelFile;
  *out = std::make_shared<ModelEntry>(
      name, std::shared_ptr<AssignmentEngine>(std::move(engine)),
      std::move(journal), std::move(durability), recovery, model_path,
      managed, options_.engine_options, options_.retry);
  return Status::Ok();
}

Status ModelRegistry::InsertEntry(const std::string& name,
                                  const std::shared_ptr<ModelEntry>& entry) {
  std::unique_lock<std::shared_mutex> lock(map_mutex_);
  if (entries_.size() >= static_cast<size_t>(options_.max_models)) {
    return Status::ResourceExhausted(
        "registry: " + std::to_string(options_.max_models) +
        " models already registered");
  }
  if (!entries_.emplace(name, entry).second) {
    return Status::AlreadyExists("registry: model '" + name +
                                 "' already exists");
  }
  return Status::Ok();
}

Status ModelRegistry::CreateFromFile(const std::string& name,
                                     const std::string& model_path,
                                     std::shared_ptr<ModelEntry>* out) {
  DBSVEC_RETURN_IF_ERROR(ValidateModelName(name));
  std::lock_guard<std::mutex> admin(admin_mutex_);
  if (Find(name) != nullptr) {
    return Status::AlreadyExists("registry: model '" + name +
                                 "' already exists");
  }
  DBSVEC_RETURN_IF_ERROR(FailpointCheck("registry.create"));
  std::string base_path = model_path;
  if (!options_.data_dir.empty()) {
    // Import the artifact into the layout so a restart recovers it from
    // the registry's own directory, not from a path that may have moved.
    std::vector<uint8_t> bytes;
    DBSVEC_RETURN_IF_ERROR(ReadFileBytes(model_path, &bytes));
    DBSVEC_RETURN_IF_ERROR(EnsureDir(ModelDir(name)));
    base_path = ModelDir(name) + "/" + kBaseModelFile;
    DBSVEC_RETURN_IF_ERROR(
        WriteFileBytesAtomic(base_path, bytes, "model.save"));
  }
  std::shared_ptr<ModelEntry> entry;
  DBSVEC_RETURN_IF_ERROR(BuildEntry(name, base_path, &entry));
  DBSVEC_RETURN_IF_ERROR(InsertEntry(name, entry));
  if (out != nullptr) {
    *out = std::move(entry);
  }
  return Status::Ok();
}

Status ModelRegistry::CreateFromBytes(const std::string& name,
                                      std::span<const uint8_t> bytes,
                                      std::shared_ptr<ModelEntry>* out) {
  DBSVEC_RETURN_IF_ERROR(ValidateModelName(name));
  std::lock_guard<std::mutex> admin(admin_mutex_);
  if (Find(name) != nullptr) {
    return Status::AlreadyExists("registry: model '" + name +
                                 "' already exists");
  }
  DBSVEC_RETURN_IF_ERROR(FailpointCheck("registry.create"));
  std::shared_ptr<ModelEntry> entry;
  if (!options_.data_dir.empty()) {
    DBSVEC_RETURN_IF_ERROR(EnsureDir(ModelDir(name)));
    const std::string base_path = ModelDir(name) + "/" + kBaseModelFile;
    DBSVEC_RETURN_IF_ERROR(
        WriteFileBytesAtomic(base_path, bytes, "model.save"));
    DBSVEC_RETURN_IF_ERROR(BuildEntry(name, base_path, &entry));
  } else {
    // In-memory registry: validate + build straight from the upload.
    DbsvecModel model;
    DBSVEC_RETURN_IF_ERROR(DeserializeModel(bytes, &model));
    std::unique_ptr<AssignmentEngine> engine;
    DBSVEC_RETURN_IF_ERROR(AssignmentEngine::Create(
        std::move(model), options_.engine_options, &engine));
    entry = std::make_shared<ModelEntry>(
        name, std::shared_ptr<AssignmentEngine>(std::move(engine)), nullptr,
        server::DurabilityOptions(), server::RecoveryReport(),
        /*base_model_path=*/"", /*managed_base=*/false,
        options_.engine_options, options_.retry);
  }
  DBSVEC_RETURN_IF_ERROR(InsertEntry(name, entry));
  if (out != nullptr) {
    *out = std::move(entry);
  }
  return Status::Ok();
}

Status ModelRegistry::Adopt(const std::string& name,
                            std::shared_ptr<AssignmentEngine> engine,
                            std::shared_ptr<OverlayJournal> journal,
                            const server::DurabilityOptions& durability,
                            const server::RecoveryReport& recovery,
                            const std::string& base_model_path) {
  DBSVEC_RETURN_IF_ERROR(ValidateModelName(name));
  if (engine == nullptr) {
    return Status::InvalidArgument("registry: adopted engine must not be null");
  }
  std::lock_guard<std::mutex> admin(admin_mutex_);
  const bool managed =
      !options_.data_dir.empty() &&
      base_model_path == ModelDir(name) + "/" + kBaseModelFile;
  auto entry = std::make_shared<ModelEntry>(
      name, std::move(engine), std::move(journal), durability, recovery,
      base_model_path, managed, options_.engine_options, options_.retry);
  return InsertEntry(name, entry);
}

Status ModelRegistry::RecoverAll(RegistryRecoveryReport* report) {
  RegistryRecoveryReport local;
  RegistryRecoveryReport& out = report != nullptr ? *report : local;
  out = RegistryRecoveryReport();
  if (options_.data_dir.empty()) {
    return Status::Ok();
  }
  DBSVEC_RETURN_IF_ERROR(EnsureDir(options_.data_dir));
  DIR* dir = ::opendir(options_.data_dir.c_str());
  if (dir == nullptr) {
    return Status::IoError("registry: opendir " + options_.data_dir + ": " +
                           std::strerror(errno));
  }
  std::vector<std::string> names;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") {
      continue;
    }
    // Only directories whose name passes the registry grammar and that
    // hold a base artifact are model homes; anything else (tmp files,
    // foreign dirs) is left alone.
    if (!ValidateModelName(name).ok()) {
      continue;
    }
    if (!FileExists(ModelDir(name) + "/" + kBaseModelFile)) {
      continue;
    }
    names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());

  std::lock_guard<std::mutex> admin(admin_mutex_);
  for (const std::string& name : names) {
    if (Find(name) != nullptr) {
      continue;  // Adopted before recovery (the CLI's default model).
    }
    const Status gate = FailpointCheck("registry.recover");
    if (!gate.ok()) {
      ++out.failed;
      out.failed_names.push_back(name);
      continue;
    }
    std::shared_ptr<ModelEntry> entry;
    const Status built =
        BuildEntry(name, ModelDir(name) + "/" + kBaseModelFile, &entry);
    if (!built.ok() || !InsertEntry(name, entry).ok()) {
      // One unrecoverable model must not take the rest of the fleet down:
      // skip it (its directory stays for offline repair) and keep going.
      ++out.failed;
      out.failed_names.push_back(name);
      continue;
    }
    ++out.recovered;
  }
  return Status::Ok();
}

std::shared_ptr<ModelEntry> ModelRegistry::Find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(map_mutex_);
  const auto it = entries_.find(std::string(name));
  return it == entries_.end() ? nullptr : it->second;
}

Status ModelRegistry::Remove(const std::string& name) {
  DBSVEC_RETURN_IF_ERROR(ValidateModelName(name));
  std::lock_guard<std::mutex> admin(admin_mutex_);
  std::shared_ptr<ModelEntry> entry;
  {
    std::unique_lock<std::shared_mutex> lock(map_mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::NotFound("registry: no model named '" + name + "'");
    }
    entry = it->second;
    entries_.erase(it);
  }
  // In-flight requests still hold the entry (and its engine) and finish
  // normally; new lookups miss. Detach the journal so a late absorb does
  // not append to files we are about to unlink.
  entry->DetachJournal();
  if (!options_.data_dir.empty()) {
    const std::string dir = ModelDir(name);
    RemoveFile(dir + "/" + kBaseModelFile);
    RemoveFile(dir + "/" + kSnapshotFile);
    RemoveFile(std::string(dir + "/" + kSnapshotFile) + ".tmp");
    RemoveFile(dir + "/" + kJournalFile);
    RemoveFile(std::string(dir + "/" + kJournalFile) + ".tmp");
    ::rmdir(dir.c_str());
  }
  return Status::Ok();
}

std::vector<std::shared_ptr<ModelEntry>> ModelRegistry::List() const {
  std::vector<std::shared_ptr<ModelEntry>> out;
  {
    std::shared_lock<std::shared_mutex> lock(map_mutex_);
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
      out.push_back(entry);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const std::shared_ptr<ModelEntry>& a,
               const std::shared_ptr<ModelEntry>& b) {
              return a->name() < b->name();
            });
  return out;
}

size_t ModelRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(map_mutex_);
  return entries_.size();
}

}  // namespace dbsvec::registry
