#ifndef DBSVEC_REGISTRY_MODEL_NAME_H_
#define DBSVEC_REGISTRY_MODEL_NAME_H_

#include <string_view>

#include "common/status.h"

namespace dbsvec::registry {

/// Maximum length of a registered model name.
inline constexpr size_t kMaxModelNameLength = 64;

/// Validates a model name against the registry grammar `[a-z0-9_-]{1,64}`.
///
/// The grammar is deliberately strict because a name becomes a directory
/// component of the `--data-dir` layout (`<data-dir>/<name>/...`): no
/// slashes, no dots, no uppercase, nothing a filesystem or a URL could
/// reinterpret, so "../../etc" or "a/b" can never escape the data
/// directory. Shared by the server's REST handlers and the CLI tools so
/// both sides reject the same names with the same message.
///
/// Returns InvalidArgument naming the first offending character (or the
/// length violation); the message is JSON-safe (offending bytes are
/// rendered as an escaped hex code, never verbatim).
Status ValidateModelName(std::string_view name);

}  // namespace dbsvec::registry

#endif  // DBSVEC_REGISTRY_MODEL_NAME_H_
