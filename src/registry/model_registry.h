#ifndef DBSVEC_REGISTRY_MODEL_REGISTRY_H_
#define DBSVEC_REGISTRY_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "model/overlay_journal.h"
#include "serve/assignment_engine.h"
#include "serve/engine_swap.h"
#include "server/durability.h"
#include "server/retry.h"
#include "server/stats.h"

namespace dbsvec::registry {

/// Configuration of a ModelRegistry (one per Server).
struct RegistryOptions {
  /// Root of the on-disk layout. Every named model owns the directory
  /// `<data_dir>/<name>/` holding
  ///   model.dbsvec      the base artifact (uploaded or imported)
  ///   snapshot.dbsvec   the latest atomic checkpoint (durable mode)
  ///   overlay.journal   the overlay write-ahead journal (durable mode)
  /// Empty = in-memory registry: models are created from uploads or
  /// external paths and do not survive a restart.
  std::string data_dir;
  /// Engine construction options for created/recovered/reloaded models.
  AssignmentOptions engine_options;
  /// Retry/backoff for model loads (create, recover, reload).
  server::RetryOptions retry;
  /// Per-model durability (requires data_dir): each model gets its own
  /// journal/snapshot pair and replays through RecoverEngine at startup.
  bool durable = false;
  FsyncPolicy fsync = FsyncPolicy::kInterval;
  int64_t fsync_interval_ms = 50;
  int64_t checkpoint_interval_ms = 0;
  /// Hard cap on registered models (create beyond it => ResourceExhausted).
  int max_models = 64;
  /// Per-model admission limit on in-flight assign/refresh requests;
  /// 0 = no per-model gate (the server-wide gate still applies).
  int model_max_inflight = 0;
};

/// Cumulative per-model serving counters, all relaxed atomics (same
/// discipline as ServerStats); rendered into the `models` object of
/// /v1/statz and into GET /v1/models/<name>.
struct ModelStats {
  std::atomic<uint64_t> requests_assign{0};
  std::atomic<uint64_t> points_assigned{0};
  std::atomic<uint64_t> requests_stream{0};  ///< Streaming-assign requests.
  std::atomic<uint64_t> stream_frames{0};    ///< Frames across all streams.
  std::atomic<uint64_t> requests_shed{0};    ///< Per-model 503 rejections.
  std::atomic<uint64_t> deadline_hits{0};
  std::atomic<uint64_t> cores_absorbed{0};
  std::atomic<uint64_t> refresh_failures{0};
  std::atomic<uint64_t> reloads_ok{0};
  std::atomic<uint64_t> reloads_failed{0};
  std::atomic<uint64_t> reload_attempts{0};
  std::atomic<uint64_t> checkpoints_ok{0};
  std::atomic<uint64_t> checkpoints_failed{0};
  server::LatencyHistogram assign_latency;
};

/// One named model: its RCU engine handle, its journal/snapshot pair, its
/// recovery report, and its serving stats. Handed out as a shared_ptr so a
/// request that resolved the entry keeps serving from it even if the model
/// is deleted mid-flight (the same drain-by-refcount semantics EngineHandle
/// gives reloads).
class ModelEntry {
 public:
  ModelEntry(std::string name, std::shared_ptr<AssignmentEngine> engine,
             std::shared_ptr<OverlayJournal> journal,
             server::DurabilityOptions durability,
             server::RecoveryReport recovery, std::string base_model_path,
             bool managed_base, AssignmentOptions engine_options,
             server::RetryOptions retry);

  const std::string& name() const { return name_; }
  /// Snapshot of the model's currently serving engine; never null.
  std::shared_ptr<AssignmentEngine> engine() const { return handle_.Get(); }
  /// Null when the model is not durable.
  const std::shared_ptr<OverlayJournal>& journal() const { return journal_; }
  const server::DurabilityOptions& durability() const { return durability_; }
  const server::RecoveryReport& recovery() const { return recovery_; }
  /// The artifact a restart would recover from (`<dir>/model.dbsvec` for
  /// data-dir models, the external path otherwise).
  const std::string& base_model_path() const { return base_model_path_; }

  /// Atomic model swap with retry/backoff + rollback — the per-model
  /// /v1/models/<name>/reload implementation. In durable mode the new
  /// artifact is imported into the model's data directory first, then the
  /// journal is rebound to the new identity before the swap, so a restart
  /// at any point recovers a consistent (model, overlay) pair.
  Status Reload(const std::string& path, const Deadline& deadline,
                server::RetryReport* report = nullptr);

  /// Folds the live overlay into an atomic snapshot and truncates the
  /// journal — the per-model /v1/models/<name>/snapshot implementation.
  Status Snapshot(uint32_t* snapshot_crc = nullptr,
                  uint64_t* folded_records = nullptr);

  /// Detaches the journal from the live engine (delete path): in-flight
  /// requests finish on their pinned engine, but nothing is appended to a
  /// journal whose files are about to be unlinked.
  void DetachJournal();

  ModelStats stats;
  /// Requests currently executing against this model (per-model admission).
  std::atomic<int> inflight{0};

 private:
  const std::string name_;
  EngineHandle handle_;
  const std::shared_ptr<OverlayJournal> journal_;
  const server::DurabilityOptions durability_;
  const server::RecoveryReport recovery_;
  const std::string base_model_path_;
  /// True when base_model_path_ lives inside the registry layout: a reload
  /// then imports the new artifact there so a restart recovers it. False
  /// for external paths (adopted models) — those are never overwritten.
  const bool managed_base_;
  const AssignmentOptions engine_options_;
  const server::RetryOptions retry_;
  /// Serializes reload/snapshot per model (same invariant as the server's
  /// reload_mutex_: a checkpoint never interleaves with a journal rebind).
  std::mutex reload_mutex_;
};

/// What RecoverAll found under the data directory.
struct RegistryRecoveryReport {
  int recovered = 0;  ///< Models now serving.
  int failed = 0;     ///< Directories that failed recovery (skipped).
  std::vector<std::string> failed_names;
};

/// Owner of every named model a Server hosts (the ArangoDB named-view
/// lifecycle shape: a feature-level registry, per-view state objects, and
/// thin REST handlers over both). Create/Remove serialize on one admin
/// mutex (engine builds happen outside the map lock); Find/List are
/// shared-locked and wait on neither, so lookups on the hot assign path
/// never stall behind a create building an index.
class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryOptions options);

  /// Registers a model from an artifact already on disk. With a data_dir
  /// the file is imported (copied atomically) into the model's directory
  /// so a restart recovers it; without one the external file is loaded in
  /// place. AlreadyExists on a name collision.
  Status CreateFromFile(const std::string& name,
                        const std::string& model_path,
                        std::shared_ptr<ModelEntry>* out = nullptr);

  /// Registers a model from uploaded artifact bytes (the PUT body).
  Status CreateFromBytes(const std::string& name,
                         std::span<const uint8_t> bytes,
                         std::shared_ptr<ModelEntry>* out = nullptr);

  /// Registers an already-recovered engine under `name` — the CLI's
  /// `default` model, whose recovery ran before the server started.
  Status Adopt(const std::string& name,
               std::shared_ptr<AssignmentEngine> engine,
               std::shared_ptr<OverlayJournal> journal,
               const server::DurabilityOptions& durability,
               const server::RecoveryReport& recovery,
               const std::string& base_model_path);

  /// Scans data_dir and recovers every model directory through the
  /// RecoverEngine path (snapshot preferred, journal replayed). A model
  /// that fails recovery is skipped and reported — the rest of the fleet
  /// still serves. Names already registered (an adopted `default`) are
  /// left untouched.
  Status RecoverAll(RegistryRecoveryReport* report = nullptr);

  /// The entry serving `name`, or null. Lock-cheap (shared).
  std::shared_ptr<ModelEntry> Find(std::string_view name) const;

  /// Unregisters `name` and deletes its on-disk directory (a deleted model
  /// must stay deleted across restarts). In-flight requests holding the
  /// entry finish normally. NotFound when absent.
  Status Remove(const std::string& name);

  /// Every entry, name-sorted (stable listings and deterministic
  /// durability-timer sweeps).
  std::vector<std::shared_ptr<ModelEntry>> List() const;

  size_t size() const;
  const RegistryOptions& options() const { return options_; }
  /// `<data_dir>/<name>` (valid only with a data_dir).
  std::string ModelDir(std::string_view name) const;

 private:
  /// Builds a durability config + entry for `model_path` via RecoverEngine.
  Status BuildEntry(const std::string& name, const std::string& model_path,
                    std::shared_ptr<ModelEntry>* out) const;
  Status InsertEntry(const std::string& name,
                     const std::shared_ptr<ModelEntry>& entry);

  const RegistryOptions options_;

  /// Serializes create/remove/recover end to end (slow work included).
  mutable std::mutex admin_mutex_;
  /// Guards only the map itself; held for lookups and point mutations.
  mutable std::shared_mutex map_mutex_;
  std::unordered_map<std::string, std::shared_ptr<ModelEntry>> entries_;
};

}  // namespace dbsvec::registry

#endif  // DBSVEC_REGISTRY_MODEL_REGISTRY_H_
