#include "registry/model_name.h"

#include <cstdio>
#include <string>

namespace dbsvec::registry {
namespace {

bool IsAllowed(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '-';
}

/// Renders one byte for an error message without ever emitting it raw: a
/// printable non-quote/backslash character appears as 'c', everything else
/// as its hex code. Keeps the message safe to splice into a JSON error
/// body after the standard quote/backslash escaping.
std::string DescribeChar(unsigned char c) {
  if (c >= 0x20 && c < 0x7f && c != '"' && c != '\\') {
    return std::string("'") + static_cast<char>(c) + "'";
  }
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "0x%02x", c);
  return buffer;
}

}  // namespace

Status ValidateModelName(std::string_view name) {
  if (name.empty()) {
    return Status::InvalidArgument("model name: must not be empty");
  }
  if (name.size() > kMaxModelNameLength) {
    return Status::InvalidArgument(
        "model name: " + std::to_string(name.size()) +
        " characters exceeds the " + std::to_string(kMaxModelNameLength) +
        "-character limit");
  }
  for (size_t i = 0; i < name.size(); ++i) {
    if (!IsAllowed(name[i])) {
      return Status::InvalidArgument(
          "model name: character " +
          DescribeChar(static_cast<unsigned char>(name[i])) + " at position " +
          std::to_string(i) + " is outside [a-z0-9_-]");
    }
  }
  return Status::Ok();
}

}  // namespace dbsvec::registry
