#include "core/penalty_weights.h"

#include <algorithm>
#include <cmath>

#include "svm/kernel.h"

namespace dbsvec {

std::vector<double> ComputePenaltyWeights(
    const Dataset& dataset, std::span<const PointIndex> target,
    std::span<const int32_t> train_counts, double sigma,
    const PenaltyWeightOptions& options, Rng* rng) {
  const int n = static_cast<int>(target.size());
  std::vector<double> weights(n, 1.0);
  if (n == 0) {
    return weights;
  }
  const GaussianKernel kernel(sigma);

  // Anchor set for the kernel-mean estimate: the full target set when it is
  // small, otherwise a uniform sample without concern for duplicates (the
  // estimate is a mean).
  std::vector<PointIndex> anchors;
  if (n <= options.anchor_count) {
    anchors.assign(target.begin(), target.end());
  } else {
    anchors.reserve(options.anchor_count);
    for (int s = 0; s < options.anchor_count; ++s) {
      anchors.push_back(target[rng->NextBounded(n)]);
    }
  }
  const double m = static_cast<double>(anchors.size());

  // Mean kernel value over anchor pairs: (1/m²)·ΣΣ K — the constant first
  // term of Eq. 5.
  double mean_kk = 0.0;
  for (const PointIndex a : anchors) {
    for (const PointIndex b : anchors) {
      mean_kk += kernel.FromSquaredDistance(dataset.SquaredDistance(a, b));
    }
  }
  mean_kk /= m * m;

  // Kernel distance D(x_i) = mean_kk + K(x,x) − (2/m)·Σ_a K(x_a, x)
  // (Eq. 5 with the anchor estimate; K(x,x) = 1 for the Gaussian kernel).
  std::vector<double> kd(n);
  double max_kd = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto x = dataset.point(target[i]);
    double s = 0.0;
    for (const PointIndex a : anchors) {
      s += kernel.FromSquaredDistance(dataset.SquaredDistanceTo(a, x));
    }
    kd[i] = mean_kk + 1.0 - 2.0 * s / m;
    max_kd = std::max(max_kd, kd[i]);
  }
  if (max_kd <= 0.0) {
    max_kd = 1.0;  // Degenerate target set: all weights become λ^{t_i}.
  }

  double max_weight = 0.0;
  for (int i = 0; i < n; ++i) {
    const int32_t t = train_counts[target[i]];
    weights[i] = std::pow(options.memory_factor, static_cast<double>(t)) *
                 (1.0 - kd[i] / max_kd);
    max_weight = std::max(max_weight, weights[i]);
  }
  // Floor so no point is excluded from support-vector status outright.
  const double floor_value =
      options.weight_floor * (max_weight > 0.0 ? max_weight : 1.0);
  for (double& w : weights) {
    w = std::max(w, floor_value);
  }
  return weights;
}

}  // namespace dbsvec
