#ifndef DBSVEC_CORE_CORE_TRACKER_H_
#define DBSVEC_CORE_CORE_TRACKER_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "index/neighbor_index.h"

namespace dbsvec {

/// Core-point bookkeeping of a DBSVEC run, extracted from the run loop so
/// the same record can drive both clustering and model emission.
///
/// Tracks, per point, the cached ε-neighborhood size (-1 while unknown —
/// DBSVEC's whole contribution is querying as few neighborhoods as
/// possible) and whether the point ever served as an SVDD support vector.
/// At the end of a run the set of *known* core points (count observed and
/// >= MinPts) is exactly the summary a DbsvecModel persists: every
/// non-noise training point was absorbed through the ε-neighborhood of a
/// known core point, so the known-core set answers assignment queries with
/// DBSCAN semantics (see docs/SERVING.md).
class CoreTracker {
 public:
  CoreTracker(const NeighborIndex& index, double epsilon, int min_pts)
      : index_(index), epsilon_(epsilon), min_pts_(min_pts) {}

  /// Resets all bookkeeping for a dataset of `n` points.
  void Reset(PointIndex n) {
    neighbor_count_.assign(n, -1);
    is_support_vector_.assign(n, 0);
  }

  /// True iff `i` is a core point; issues and caches a counting range
  /// query on first use.
  bool IsCore(PointIndex i) {
    if (neighbor_count_[i] < 0) {
      neighbor_count_[i] =
          index_.RangeCount(index_.dataset().point(i), epsilon_);
    }
    return neighbor_count_[i] >= min_pts_;
  }

  /// Cached neighborhood size of `i`, or -1 while unknown. Never queries.
  int32_t count(PointIndex i) const { return neighbor_count_[i]; }

  /// Records a neighborhood size learned from a materialized range query.
  void RecordCount(PointIndex i, int32_t count) {
    neighbor_count_[i] = count;
  }

  /// True iff `i`'s neighborhood is cached and below MinPts (the skip rule
  /// of the support-vector fan-out: a known non-core SV cannot expand).
  bool IsKnownNonCore(PointIndex i) const {
    return neighbor_count_[i] >= 0 && neighbor_count_[i] < min_pts_;
  }

  /// True iff `i`'s neighborhood is cached and dense.
  bool IsKnownCore(PointIndex i) const {
    return neighbor_count_[i] >= min_pts_;
  }

  /// Marks `i` as having been a support vector of some training round.
  void MarkSupportVector(PointIndex i) { is_support_vector_[i] = 1; }

  bool IsSupportVector(PointIndex i) const {
    return is_support_vector_[i] != 0;
  }

  /// All known core points, in ascending point order (deterministic).
  std::vector<PointIndex> KnownCorePoints() const {
    std::vector<PointIndex> cores;
    for (PointIndex i = 0;
         i < static_cast<PointIndex>(neighbor_count_.size()); ++i) {
      if (neighbor_count_[i] >= min_pts_) {
        cores.push_back(i);
      }
    }
    return cores;
  }

 private:
  const NeighborIndex& index_;
  const double epsilon_;
  const int min_pts_;
  std::vector<int32_t> neighbor_count_;     // -1 = unknown.
  std::vector<uint8_t> is_support_vector_;
};

}  // namespace dbsvec

#endif  // DBSVEC_CORE_CORE_TRACKER_H_
