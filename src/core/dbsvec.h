#ifndef DBSVEC_CORE_DBSVEC_H_
#define DBSVEC_CORE_DBSVEC_H_

#include <cstdint>

#include "cluster/clustering.h"
#include "common/dataset.h"
#include "common/deadline.h"
#include "common/status.h"
#include "core/penalty_weights.h"
#include "index/neighbor_index.h"
#include "model/dbsvec_model.h"
#include "svm/smo_solver.h"

namespace dbsvec {

/// How the per-training penalty factor ν is chosen.
enum class NuMode {
  kAuto,     ///< ν* = d·sqrt(log_MinPts ñ)/ñ (Eq. 20) — the paper default.
  kMinimum,  ///< ν = 1/ñ — the DBSVEC_min variant of Table III.
  kFixed,    ///< A caller-supplied constant (Fig. 8 sweeps this).
};

/// Parameters of DBSVEC (Algorithms 2 & 3 plus the Sec. IV refinements).
struct DbsvecParams {
  /// Neighborhood radius ε (> 0).
  double epsilon = 1.0;
  /// Density threshold MinPts (>= 1).
  int min_pts = 5;

  /// Penalty-factor policy; `fixed_nu` applies only under NuMode::kFixed.
  NuMode nu_mode = NuMode::kAuto;
  double fixed_nu = 0.1;

  /// Adaptive penalty weights (Sec. IV-A). Disabling reproduces the
  /// DBSVEC\WF ablation of Fig. 9a.
  bool adaptive_weights = true;
  /// Incremental learning (Sec. IV-B1). Disabling reproduces DBSVEC\IL.
  bool incremental_learning = true;
  /// Kernel-width selection σ = r/√2 (Sec. IV-B2). Disabling draws σ
  /// uniformly from the pairwise-distance range — the DBSVEC\OK ablation.
  bool auto_sigma = true;

  /// Learning threshold T: points trained more than T times leave the SVDD
  /// target set. Paper default T = 3 (Sec. IV-B1).
  int learning_threshold = 3;
  /// Stall recovery (this library's extension, DESIGN.md §6): when the
  /// incremental target stops growing the sub-cluster, run one training
  /// round over the full member set before declaring it stable. Restores
  /// the non-incremental fixpoint on thin elongated clusters at the cost
  /// of one extra SVDD per sub-cluster.
  bool stall_recovery = true;
  /// Memory factor λ > 1 of the penalty weights (Eq. 7).
  double memory_factor = 2.0;
  /// Anchor-sample size for the O(ñ) kernel-distance estimate.
  int penalty_anchor_count = 256;

  /// Range-query engine. The paper evaluates DBSVEC with plain linear
  /// scans (kBruteForce); kKdTree is this library's faster default.
  IndexType index = IndexType::kKdTree;

  /// 0 = the legacy unsharded path (default); >= 1 routes every range
  /// query through the sharded execution engine with this many per-shard
  /// indexes of type `index` (see exec::ShardedIndex — labels are
  /// bit-identical at any shards >= 1 and any thread count).
  int shards = 0;

  /// Safety valve: SVDD target sets larger than this are uniformly
  /// subsampled before training (0 disables). The expansion recursion and
  /// sub-cluster merging recover any boundary coverage the sample misses.
  int max_svdd_target = 4096;

  /// > 0: hard support-vector budget B per SVDD solve (bounded-cost SVDD,
  /// docs/PERFORMANCE.md). The solver merges/forgets least-violating SVs
  /// to stay within B and caps its iterations linearly in B, so each solve
  /// is O(B·ñ) instead of O(ñ²); a budget too small for the box
  /// constraints degrades that sub-cluster to exact expansion (Theorem
  /// 1/3 semantics). 0 = exact SMO (default).
  int sv_budget = 0;
  /// > 0: SVDD targets larger than this train on a boundary-preserving
  /// sample of exactly this size (outer shell by distance-to-centroid rank
  /// plus a uniform floor, deterministic given `seed`); the full target is
  /// then re-checked against the learned sphere, so expansion semantics
  /// are unchanged — members the sphere does not explain stay in future
  /// targets. 0 = train on the full (incremental) target (default).
  int sample_threshold = 0;

  /// Fill Clustering::point_types (core/border/noise) in the result. Off
  /// by default: DBSVEC's whole point is *not* querying every point's
  /// neighborhood, and classifying the unqueried members costs one
  /// counting range query each.
  bool classify_points = false;

  /// Seed for every stochastic choice (anchor sampling, subsampling, the
  /// \OK random σ). Equal seeds give identical clusterings.
  uint64_t seed = 7;

  /// Time budget / cancellation for the whole run (index build, seed scan,
  /// SVDD training, expansion, noise verification). Default: unlimited.
  /// When it expires the run stops at the next check point and returns
  /// Status with Code::kDeadlineExceeded; Clustering::stats is still filled
  /// with the partial counts accumulated so far (labels are cleared).
  Deadline deadline;

  /// SMO solver options.
  SmoOptions smo;
};

/// DBSVEC — Density-Based Support Vector Expansion Clustering (the paper's
/// contribution). Produces density-based clusters approximating DBSCAN's
/// with the guarantees of Sec. III-C: every DBSVEC cluster is contained in
/// a DBSCAN cluster (it may split, never merges DBSCAN clusters) and the
/// noise set is identical to DBSCAN's.
///
/// When `model` is non-null the run additionally emits a servable
/// DbsvecModel: the known-core summary, per-sub-cluster SVDD spheres, and
/// the fitted parameters (the model's `transform` is left empty — callers
/// that normalized the data attach the transform themselves). Model
/// emission never changes the clustering output or its statistics.
Status RunDbsvec(const Dataset& dataset, const DbsvecParams& params,
                 Clustering* out, DbsvecModel* model = nullptr);

/// DBSVEC over a caller-supplied range-query engine (the index's dataset is
/// clustered). Exposed for engine-comparison tests and benches.
Status RunDbsvecWithIndex(const NeighborIndex& index,
                          const DbsvecParams& params, Clustering* out,
                          DbsvecModel* model = nullptr);

}  // namespace dbsvec

#endif  // DBSVEC_CORE_DBSVEC_H_
