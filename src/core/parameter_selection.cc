#include "core/parameter_selection.h"

#include <algorithm>
#include <cmath>

namespace dbsvec {

double SelectNuStar(int dim, int target_size, int min_pts) {
  const double n = static_cast<double>(std::max(1, target_size));
  const double base = static_cast<double>(std::max(2, min_pts));
  const double log_ratio = std::log(n) / std::log(base);
  double nu = static_cast<double>(dim) * std::sqrt(std::max(0.0, log_ratio)) /
              n;
  nu = std::clamp(nu, 1.0 / n, 1.0);
  return nu;
}

double SelectNuMin(int target_size) {
  return 1.0 / static_cast<double>(std::max(1, target_size));
}

double RandomSigma(const Dataset& dataset,
                   std::span<const PointIndex> target, Rng* rng) {
  const size_t n = target.size();
  if (n < 2) {
    return 1.0;
  }
  constexpr int kSamplePairs = 64;
  double min_dist = std::numeric_limits<double>::infinity();
  double max_dist = 0.0;
  for (int s = 0; s < kSamplePairs; ++s) {
    const PointIndex a = target[rng->NextBounded(n)];
    PointIndex b = target[rng->NextBounded(n)];
    if (a == b) {
      continue;
    }
    const double d = std::sqrt(dataset.SquaredDistance(a, b));
    min_dist = std::min(min_dist, d);
    max_dist = std::max(max_dist, d);
  }
  if (!std::isfinite(min_dist) || max_dist <= 0.0) {
    return 1.0;
  }
  const double sigma = rng->Uniform(min_dist, max_dist);
  return std::max(sigma, 1e-9);
}

}  // namespace dbsvec
