#include "core/dbsvec.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/union_find.h"
#include "core/core_tracker.h"
#include "exec/sharded_index.h"
#include "exec/topology.h"
#include "core/parameter_selection.h"
#include "model/dbsvec_model.h"
#include "svm/svdd.h"
#include "svm/target_sampler.h"

namespace dbsvec {
namespace {

constexpr int32_t kUnclassified = -2;
constexpr int32_t kPotentialNoise = -3;

/// Mutable state of one DBSVEC run. Labels hold sub-cluster ids (indices
/// into the union-find forest) during the run and are resolved to dense
/// cluster ids at the end.
/// SVDD sphere parameters of a sub-cluster's most recent training round,
/// captured for model emission.
struct SphereCapture {
  double sigma = 0.0;
  double radius_sq = 0.0;
  int32_t num_support_vectors = 0;
};

class DbsvecRun {
 public:
  DbsvecRun(const NeighborIndex& index, const DbsvecParams& params,
            Clustering* out, DbsvecModel* model_out)
      : index_(index),
        dataset_(index.dataset()),
        params_(params),
        out_(out),
        model_out_(model_out),
        rng_(params.seed),
        core_(index, params.epsilon, params.min_pts) {}

  Status Execute();

 private:
  /// Folds the points of `neighborhood` (the ε-neighborhood of a core
  /// point) into sub-cluster `cid`: unlabelled and potential-noise points
  /// are claimed; points of other sub-clusters trigger the overlapping-
  /// point merge test (Lemma 3).
  void AbsorbNeighborhood(const std::vector<PointIndex>& neighborhood,
                          int32_t cid, std::vector<PointIndex>* members);

  /// Support vector expansion (Algorithm 3), iterated until the
  /// sub-cluster stops growing.
  Status ExpandCluster(int32_t cid, std::vector<PointIndex>* members);

  /// Graceful degradation: exact range-query expansion of `members` with
  /// plain DBSCAN semantics — every member with an unknown neighborhood
  /// count is queried, core members absorb their neighborhoods, and the
  /// member list grows until closure. Used when a training round for this
  /// sub-cluster fails, does not converge, or yields a degenerate sphere;
  /// by Theorem 1 the result still sits inside the DBSCAN cluster of the
  /// seed, so correctness degrades to exact DBSCAN, never to garbage.
  Status ExpandExact(int32_t cid, std::vector<PointIndex>* members);

  /// The seed scan (Algorithm 2 main loop): sequential or speculative
  /// batched depending on the thread pool. Split out of Execute so stats
  /// can be finalized even when the scan stops early (deadline, fault).
  Status Scan();

  /// Builds the SVDD target set for the current training round. When
  /// `full` is set the incremental-learning filter is bypassed (used for
  /// the stall-recovery pass).
  void SelectTarget(const std::vector<PointIndex>& members, bool full,
                    std::vector<PointIndex>* target);

  /// Noise verification (last step of Algorithm 2).
  void VerifyNoise();

  /// Reduces the finished run to a servable DbsvecModel (known-core
  /// summary + sub-cluster spheres). `labels` are the final dense labels.
  void BuildModel(const std::vector<int32_t>& labels);

  const NeighborIndex& index_;
  const Dataset& dataset_;
  const DbsvecParams& params_;
  Clustering* out_;
  DbsvecModel* model_out_;  // nullptr = no model emission.
  Rng rng_;
  CoreTracker core_;

  UnionFind sub_clusters_;
  // Scratch for the boundary-preserving target sample (reused per round).
  std::vector<PointIndex> sampled_target_;
  // Scratch for the batched support-vector fan-out (reused per round).
  std::vector<size_t> queried_svs_;
  std::vector<PointIndex> sv_query_ids_;
  std::vector<std::vector<PointIndex>> sv_neighborhoods_;
  std::vector<int32_t> labels_;
  std::vector<int32_t> train_count_;     // t_i of Sec. IV-B1.
  std::vector<PointIndex> potential_noise_;
  std::vector<std::vector<PointIndex>> noise_neighborhoods_;
  // Last-round SVDD sphere per sub-cluster id (model emission only).
  std::vector<SphereCapture> sphere_captures_;
  ClusteringStats stats_;
};

void DbsvecRun::AbsorbNeighborhood(
    const std::vector<PointIndex>& neighborhood, int32_t cid,
    std::vector<PointIndex>* members) {
  for (const PointIndex j : neighborhood) {
    const int32_t label = labels_[j];
    if (label == kUnclassified || label == kPotentialNoise) {
      labels_[j] = cid;
      train_count_[j] = 0;
      members->push_back(j);
    } else if (sub_clusters_.Find(label) != sub_clusters_.Find(cid)) {
      // Overlapping point from another sub-cluster: merge if it is core
      // (Lemma 3). The core test may issue a counting range query.
      if (core_.IsCore(j)) {
        sub_clusters_.Union(label, cid);
        ++stats_.num_merges;
      }
    }
  }
}

void DbsvecRun::SelectTarget(const std::vector<PointIndex>& members,
                             bool full, std::vector<PointIndex>* target) {
  target->clear();
  if (params_.incremental_learning && !full) {
    for (const PointIndex p : members) {
      if (train_count_[p] <= params_.learning_threshold) {
        target->push_back(p);
      }
    }
  } else {
    *target = members;
  }
  if (params_.max_svdd_target > 0 &&
      static_cast<int>(target->size()) > params_.max_svdd_target) {
    // Uniform subsample (partial Fisher-Yates): a bounded training set
    // keeps each SVDD solve O(max_svdd_target).
    for (int i = 0; i < params_.max_svdd_target; ++i) {
      const size_t j =
          i + static_cast<size_t>(rng_.NextBounded(target->size() - i));
      std::swap((*target)[i], (*target)[j]);
    }
    target->resize(params_.max_svdd_target);
  }
}

Status DbsvecRun::ExpandExact(int32_t cid,
                              std::vector<PointIndex>* members) {
  ++stats_.num_svdd_fallbacks;
  std::vector<PointIndex> neighborhood;
  // `members` grows while we iterate: absorbed points are appended and
  // processed in turn, exactly DBSCAN's expansion queue.
  for (size_t k = 0; k < members->size(); ++k) {
    DBSVEC_RETURN_IF_ERROR(params_.deadline.Check("DBSVEC exact expansion"));
    const PointIndex p = (*members)[k];
    if (core_.count(p) >= 0) {
      // Known count ⇒ already handled: the seed and previously queried
      // support vectors had their neighborhoods absorbed when the count
      // was recorded, and known non-core members cannot expand.
      continue;
    }
    index_.RangeQuery(p, params_.epsilon, &neighborhood);
    core_.RecordCount(p, static_cast<int32_t>(neighborhood.size()));
    if (static_cast<int>(neighborhood.size()) < params_.min_pts) {
      continue;  // Border point of this sub-cluster.
    }
    AbsorbNeighborhood(neighborhood, cid, members);
  }
  return Status::Ok();
}

Status DbsvecRun::ExpandCluster(int32_t cid,
                                std::vector<PointIndex>* members) {
  std::vector<PointIndex> target;
  // Stall recovery: when the incremental target produces no growth, one
  // round over the *full* member set runs before the sub-cluster is
  // declared stable. This keeps incremental learning an efficiency-only
  // optimization (same fixpoint as training on all members, which is what
  // Sec. IV-B1's "negligible impact on accuracy" requires) instead of a
  // source of premature stops on thin, elongated clusters.
  bool full_pass = false;
  while (true) {
    DBSVEC_RETURN_IF_ERROR(params_.deadline.Check("DBSVEC expansion"));
    SelectTarget(*members, full_pass, &target);
    if (target.empty()) {
      if (params_.incremental_learning && params_.stall_recovery && !full_pass) {
        full_pass = true;
        continue;
      }
      break;  // Every member exhausted its learning budget: stable.
    }

    // Boundary-preserving sampling (bounded-cost SVDD): above the
    // threshold the solve trains on an outer-shell sample and the full
    // target is re-checked against the learned sphere below, so the
    // expansion semantics are those of training on everything. Off by
    // default — when it does not fire, `train_target` aliases `target`
    // and the round is bit-identical to the unsampled path.
    std::span<const PointIndex> train_target{target};
    bool sampled = false;
    if (params_.sample_threshold > 0) {
      TargetSamplerOptions sampler_options;
      sampler_options.threshold = params_.sample_threshold;
      sampler_options.seed = params_.seed;
      sampled = TargetSampler::Sample(dataset_, target, sampler_options,
                                      &sampled_target_);
      if (sampled) {
        train_target = sampled_target_;
        ++stats_.num_sampled_solves;
      }
    }

    SvddParams svdd_params;
    svdd_params.smo = params_.smo;
    svdd_params.sv_budget = params_.sv_budget;
    svdd_params.sigma = params_.auto_sigma
                            ? 0.0  // Svdd picks r/√2 itself.
                            : RandomSigma(dataset_, train_target, &rng_);
    const int nn = static_cast<int>(train_target.size());
    switch (params_.nu_mode) {
      case NuMode::kAuto:
        svdd_params.nu = SelectNuStar(dataset_.dim(), nn, params_.min_pts);
        break;
      case NuMode::kMinimum:
        svdd_params.nu = SelectNuMin(nn);
        break;
      case NuMode::kFixed:
        svdd_params.nu = std::clamp(params_.fixed_nu, 1.0 / nn, 1.0);
        break;
    }
    if (params_.adaptive_weights) {
      PenaltyWeightOptions weight_options;
      weight_options.memory_factor = params_.memory_factor;
      weight_options.anchor_count = params_.penalty_anchor_count;
      const double sigma = svdd_params.sigma > 0.0
                               ? svdd_params.sigma
                               : Svdd::SelectSigma(dataset_, train_target);
      svdd_params.sigma = sigma;
      svdd_params.weights = ComputePenaltyWeights(
          dataset_, train_target, train_count_, sigma, weight_options,
          &rng_);
    }

    SvddModel model;
    const Status train_status =
        Svdd::Train(dataset_, train_target, svdd_params, &model);
    if (!train_status.ok()) {
      if (train_status.code() == Status::Code::kDeadlineExceeded) {
        return train_status;  // The caller asked to stop; do not degrade.
      }
      // Solve failed outright (injected fault, numerically infeasible
      // caps, ...): fall back to exact expansion of this sub-cluster.
      return ExpandExact(cid, members);
    }
    ++stats_.num_svdd_trainings;
    stats_.num_support_vectors += model.support_vectors().size();
    stats_.smo_iterations += model.smo_iterations();
    stats_.max_smo_iterations =
        std::max(stats_.max_smo_iterations, model.smo_iterations());
    stats_.num_budget_merges += static_cast<uint64_t>(model.budget_merges());
    stats_.num_budget_forgets +=
        static_cast<uint64_t>(model.budget_forgets());
    if (model.caps_rescaled()) {
      ++stats_.num_caps_rescaled;
    }
    if (!model.converged()) {
      ++stats_.num_nonconverged_solves;
    }
    for (const PointIndex p : train_target) {
      ++train_count_[p];
    }
    if (!model.converged() || model.degenerate()) {
      // A sphere the solver did not finish (or that came out degenerate)
      // may miss support vectors on the true boundary; expanding from it
      // risks under-covering the sub-cluster. Degrade to exact expansion.
      return ExpandExact(cid, members);
    }
    if (sampled) {
      // Re-check the full target against the learned sphere: members the
      // sphere explains spend one training round (they leave future
      // incremental targets exactly as if they had been trained on),
      // members it does not explain keep their budget so later rounds
      // revisit them. The sample preserves the target's relative order,
      // so a two-pointer walk separates trained-on from re-checked.
      size_t s = 0;
      for (const PointIndex p : target) {
        if (s < sampled_target_.size() && sampled_target_[s] == p) {
          ++s;  // Trained on directly; counted above.
          continue;
        }
        if (model.Contains(dataset_, dataset_.point(p))) {
          ++train_count_[p];
        }
      }
    }
    if (model_out_ != nullptr) {
      // Capture the fitted sphere (the latest round wins) and the core-SV
      // flags for model emission.
      if (cid >= static_cast<int32_t>(sphere_captures_.size())) {
        sphere_captures_.resize(cid + 1);
      }
      sphere_captures_[cid] = {model.sigma(), model.radius_sq(),
                               static_cast<int32_t>(
                                   model.support_vectors().size())};
      for (const SvddModel::SupportVector& sv : model.support_vectors()) {
        core_.MarkSupportVector(sv.index);
      }
    }

    // Expand from the core support vectors (Definition 6 / Algorithm 3).
    // The skip rule below only depends on neighbor counts known *before*
    // this round (absorbing one SV's neighborhood never updates the count
    // of another SV in the list — those are all members of `cid`, and the
    // core test inside AbsorbNeighborhood only fires for points of other
    // sub-clusters), so the set of range queries is fixed upfront. That
    // lets the queries fan out as one RangeQueryBatch (thread-pool
    // parallel; shard-affine under the sharded engine) while the
    // absorption — which mutates labels and the union-find — replays
    // sequentially in SV order, producing labels, merges, and stats
    // identical to the sequential run.
    const size_t last_size = members->size();
    const auto& svs = model.support_vectors();
    queried_svs_.clear();
    sv_query_ids_.clear();
    for (size_t s = 0; s < svs.size(); ++s) {
      if (core_.IsKnownNonCore(svs[s].index)) {
        continue;  // Known non-core support vector: cannot expand.
      }
      queried_svs_.push_back(s);
      sv_query_ids_.push_back(svs[s].index);
    }
    DBSVEC_RETURN_IF_ERROR(index_.RangeQueryBatch(
        sv_query_ids_, params_.epsilon, &sv_neighborhoods_));
    for (size_t k = 0; k < queried_svs_.size(); ++k) {
      const SvddModel::SupportVector& sv = svs[queried_svs_[k]];
      const std::vector<PointIndex>& hood = sv_neighborhoods_[k];
      core_.RecordCount(sv.index, static_cast<int32_t>(hood.size()));
      if (static_cast<int>(hood.size()) < params_.min_pts) {
        continue;  // Non-core support vector (SV_2 in Fig. 3b).
      }
      AbsorbNeighborhood(hood, cid, members);
    }
    if (members->size() == last_size) {
      if (params_.incremental_learning && params_.stall_recovery && !full_pass) {
        full_pass = true;  // Stall: try once more with all members.
        continue;
      }
      break;  // No new points: the sub-cluster is stable (Algorithm 3).
    }
    full_pass = false;  // Growth: back to the incremental target.
  }
  return Status::Ok();
}

void DbsvecRun::VerifyNoise() {
  stats_.noise_list_size = potential_noise_.size();
  for (size_t k = 0; k < potential_noise_.size(); ++k) {
    const PointIndex p = potential_noise_[k];
    if (labels_[p] != kPotentialNoise) {
      continue;  // Absorbed into a cluster after being listed.
    }
    // Assign to the cluster of the nearest core point in the stored
    // ε-neighborhood, or confirm as noise if none exists.
    const std::vector<PointIndex>& neighborhood = noise_neighborhoods_[k];
    PointIndex best = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    for (const PointIndex q : neighborhood) {
      if (q == p || labels_[q] == kPotentialNoise ||
          labels_[q] == kUnclassified) {
        continue;  // Core points always carry a sub-cluster label.
      }
      if (!core_.IsCore(q)) {
        continue;
      }
      const double d = dataset_.SquaredDistance(p, q);
      if (d < best_dist) {
        best_dist = d;
        best = q;
      }
    }
    labels_[p] = best >= 0 ? labels_[best] : Clustering::kNoise;
  }
}

void DbsvecRun::BuildModel(const std::vector<int32_t>& labels) {
  DbsvecModel& model = *model_out_;
  model = DbsvecModel();
  const int dim = dataset_.dim();
  const PointIndex n = dataset_.size();
  model.epsilon = params_.epsilon;
  model.min_pts = params_.min_pts;
  model.dim = dim;
  model.train_size = n;
  model.num_clusters = out_->num_clusters;
  model.sv_budget = params_.sv_budget;
  model.sample_threshold = params_.sample_threshold;

  if (n > 0) {
    model.train_min.assign(dim, std::numeric_limits<double>::infinity());
    model.train_max.assign(dim, -std::numeric_limits<double>::infinity());
    for (PointIndex i = 0; i < n; ++i) {
      for (int d = 0; d < dim; ++d) {
        const double v = dataset_.at(i, d);
        if (v < model.train_min[d]) model.train_min[d] = v;
        if (v > model.train_max[d]) model.train_max[d] = v;
      }
    }
  }

  // Known-core summary, in ascending point order. Known cores always carry
  // a cluster label (absorption labels them on discovery); the guard is
  // belt and braces.
  Dataset cores(dim);
  for (const PointIndex i : core_.KnownCorePoints()) {
    if (labels[i] < 0) {
      continue;
    }
    cores.Append(dataset_.point(i));
    model.core_labels.push_back(labels[i]);
    model.core_is_sv.push_back(core_.IsSupportVector(i) ? 1 : 0);
  }
  model.core_points = std::move(cores);

  // One sphere per sub-cluster: input-space centroid + covering radius of
  // its members (labels_ still holds the raw sub-cluster ids), annotated
  // with the last fitted SVDD sphere of that sub-cluster.
  const int32_t num_cids = sub_clusters_.size();
  if (num_cids == 0) {
    return;
  }
  std::vector<int64_t> member_count(num_cids, 0);
  std::vector<double> centroid(static_cast<size_t>(num_cids) * dim, 0.0);
  std::vector<int32_t> dense_cluster(num_cids, -1);
  for (PointIndex i = 0; i < n; ++i) {
    const int32_t cid = labels_[i];
    if (cid < 0) {
      continue;
    }
    ++member_count[cid];
    dense_cluster[cid] = labels[i];
    for (int d = 0; d < dim; ++d) {
      centroid[static_cast<size_t>(cid) * dim + d] += dataset_.at(i, d);
    }
  }
  for (int32_t cid = 0; cid < num_cids; ++cid) {
    if (member_count[cid] > 0) {
      for (int d = 0; d < dim; ++d) {
        centroid[static_cast<size_t>(cid) * dim + d] /=
            static_cast<double>(member_count[cid]);
      }
    }
  }
  std::vector<double> max_dist_sq(num_cids, 0.0);
  for (PointIndex i = 0; i < n; ++i) {
    const int32_t cid = labels_[i];
    if (cid < 0) {
      continue;
    }
    const std::span<const double> center{
        centroid.data() + static_cast<size_t>(cid) * dim,
        static_cast<size_t>(dim)};
    const double d2 = dataset_.SquaredDistanceTo(i, center);
    if (d2 > max_dist_sq[cid]) {
      max_dist_sq[cid] = d2;
    }
  }
  for (int32_t cid = 0; cid < num_cids; ++cid) {
    if (member_count[cid] == 0 || dense_cluster[cid] < 0) {
      continue;
    }
    SubClusterSphere sphere;
    sphere.cluster = dense_cluster[cid];
    if (cid < static_cast<int32_t>(sphere_captures_.size())) {
      sphere.sigma = sphere_captures_[cid].sigma;
      sphere.radius_sq = sphere_captures_[cid].radius_sq;
      sphere.num_support_vectors = sphere_captures_[cid].num_support_vectors;
    }
    sphere.center.assign(
        centroid.begin() + static_cast<size_t>(cid) * dim,
        centroid.begin() + static_cast<size_t>(cid + 1) * dim);
    sphere.radius = std::sqrt(max_dist_sq[cid]);
    sphere.num_members = member_count[cid];
    model.spheres.push_back(std::move(sphere));
  }
}

Status DbsvecRun::Scan() {
  const PointIndex n = dataset_.size();
  std::vector<PointIndex> neighborhood;
  std::vector<PointIndex> members;
  if (GlobalThreadPool() == nullptr) {
    for (PointIndex i = 0; i < n; ++i) {
      if (labels_[i] != kUnclassified) {
        continue;
      }
      DBSVEC_RETURN_IF_ERROR(params_.deadline.Check("DBSVEC seed scan"));
      index_.RangeQuery(i, params_.epsilon, &neighborhood);
      core_.RecordCount(i, static_cast<int32_t>(neighborhood.size()));
      if (static_cast<int>(neighborhood.size()) < params_.min_pts) {
        // Potential noise: keep the neighborhood for noise verification
        // (it has fewer than MinPts entries, so the list stays small).
        labels_[i] = kPotentialNoise;
        potential_noise_.push_back(i);
        noise_neighborhoods_.push_back(neighborhood);
        continue;
      }
      // i is a core seed: initialize a new sub-cluster from its
      // ε-neighborhood (Corollary 1) and expand it by support vectors.
      const int32_t cid = sub_clusters_.MakeSet();
      members.clear();
      AbsorbNeighborhood(neighborhood, cid, &members);
      DBSVEC_RETURN_IF_ERROR(ExpandCluster(cid, &members));
    }
  } else {
    // Speculative batched seed scan: prefetch the ε-neighborhoods of the
    // next batch of still-unclassified points in parallel, then replay the
    // scan sequentially. A prefetched result is *consumed* only if its
    // point is still unclassified when the replay reaches it — the exact
    // set of points the sequential scan would have queried — and only
    // consumed queries fold their counters into the index, so labels and
    // stats match the sequential run bit for bit. Queries invalidated by
    // an intervening cluster expansion are discarded (wasted speculation,
    // never wrong results).
    const size_t batch_target = std::min<size_t>(
        256, 4 * static_cast<size_t>(GlobalThreads()));
    std::vector<PointIndex> batch;
    std::vector<std::vector<PointIndex>> batch_neighborhoods;
    std::vector<NeighborIndex::QueryCounters> batch_counters;
    PointIndex scan = 0;
    while (scan < n) {
      DBSVEC_RETURN_IF_ERROR(params_.deadline.Check("DBSVEC seed scan"));
      batch.clear();
      while (scan < n && batch.size() < batch_target) {
        if (labels_[scan] == kUnclassified) {
          batch.push_back(scan);
        }
        ++scan;
      }
      batch_neighborhoods.resize(batch.size());
      batch_counters.assign(batch.size(), {});
      ParallelFor(batch.size(), 1, [&](size_t begin, size_t end) {
        for (size_t k = begin; k < end; ++k) {
          NeighborIndex::ScopedCounterCapture capture(&batch_counters[k]);
          index_.RangeQuery(batch[k], params_.epsilon,
                            &batch_neighborhoods[k]);
        }
      });
      for (size_t k = 0; k < batch.size(); ++k) {
        const PointIndex i = batch[k];
        if (labels_[i] != kUnclassified) {
          continue;  // Claimed by an expansion after prefetch: discard.
        }
        index_.AccumulateCounters(batch_counters[k]);
        std::vector<PointIndex>& hood = batch_neighborhoods[k];
        core_.RecordCount(i, static_cast<int32_t>(hood.size()));
        if (static_cast<int>(hood.size()) < params_.min_pts) {
          labels_[i] = kPotentialNoise;
          potential_noise_.push_back(i);
          noise_neighborhoods_.push_back(std::move(hood));
          continue;
        }
        const int32_t cid = sub_clusters_.MakeSet();
        members.clear();
        AbsorbNeighborhood(hood, cid, &members);
        DBSVEC_RETURN_IF_ERROR(ExpandCluster(cid, &members));
      }
    }
  }
  return Status::Ok();
}

Status DbsvecRun::Execute() {
  const PointIndex n = dataset_.size();
  Stopwatch timer;
  index_.ResetCounters();
  labels_.assign(n, kUnclassified);
  core_.Reset(n);
  train_count_.assign(n, 0);

  const Status scan_status = Scan();
  if (!scan_status.ok()) {
    // Interrupted run (deadline, cancellation, injected fault): callers
    // get the statistics accumulated so far, but no labels — a
    // half-expanded labelling is not a clustering.
    out_->labels.clear();
    out_->num_clusters = 0;
    out_->point_types.clear();
    stats_.num_range_queries = index_.num_range_queries();
    stats_.num_distance_computations = index_.num_distance_computations();
    stats_.elapsed_seconds = timer.ElapsedSeconds();
    out_->stats = stats_;
    return scan_status;
  }

  VerifyNoise();

  // Resolve sub-cluster ids through the union-find and densify.
  std::vector<int32_t>& labels = out_->labels;
  labels.assign(n, Clustering::kNoise);
  for (PointIndex i = 0; i < n; ++i) {
    if (labels_[i] >= 0) {
      labels[i] = sub_clusters_.Find(labels_[i]);
    }
  }
  out_->num_clusters = CompactLabels(&labels);
  if (model_out_ != nullptr) {
    // Before the optional role classification: the model must be the
    // compact summary of neighborhoods the run actually proved dense, not
    // inflated by classification's extra counting queries.
    BuildModel(labels);
  }
  if (params_.classify_points) {
    // Opt-in role classification; unknown neighborhood counts cost one
    // counting range query each (reflected in the stats).
    out_->point_types.resize(n);
    for (PointIndex i = 0; i < n; ++i) {
      out_->point_types[i] = labels[i] == Clustering::kNoise
                                 ? PointType::kNoise
                             : core_.IsCore(i) ? PointType::kCore
                                               : PointType::kBorder;
    }
  } else {
    out_->point_types.clear();
  }
  stats_.num_range_queries = index_.num_range_queries();
  stats_.num_distance_computations = index_.num_distance_computations();
  stats_.elapsed_seconds = timer.ElapsedSeconds();
  out_->stats = stats_;
  return Status::Ok();
}

}  // namespace

Status RunDbsvecWithIndex(const NeighborIndex& index,
                          const DbsvecParams& params, Clustering* out,
                          DbsvecModel* model) {
  if (params.epsilon <= 0.0) {
    return Status::InvalidArgument("DBSVEC: epsilon must be positive");
  }
  if (params.min_pts < 1) {
    return Status::InvalidArgument("DBSVEC: min_pts must be >= 1");
  }
  if (params.learning_threshold < 0) {
    return Status::InvalidArgument(
        "DBSVEC: learning_threshold must be >= 0");
  }
  if (params.memory_factor <= 1.0) {
    return Status::InvalidArgument("DBSVEC: memory_factor must be > 1");
  }
  if (params.sv_budget < 0) {
    return Status::InvalidArgument("DBSVEC: sv_budget must be >= 0");
  }
  if (params.sample_threshold < 0) {
    return Status::InvalidArgument(
        "DBSVEC: sample_threshold must be >= 0");
  }
  if (params.nu_mode == NuMode::kFixed &&
      (params.fixed_nu <= 0.0 || params.fixed_nu > 1.0)) {
    return Status::InvalidArgument("DBSVEC: fixed_nu must be in (0, 1]");
  }
  DBSVEC_RETURN_IF_ERROR(ValidateFinite(index.dataset()));
  DbsvecRun run(index, params, out, model);
  return run.Execute();
}

Status RunDbsvec(const Dataset& dataset, const DbsvecParams& params,
                 Clustering* out, DbsvecModel* model) {
  Stopwatch timer;
  std::unique_ptr<NeighborIndex> index;
  Status index_status;
  if (params.shards >= 1) {
    // Sharded engine (even at shards=1, whose sorted merge is the label
    // baseline for every shard count). Pin pool workers round-robin
    // across NUMA nodes so each shard's contiguous block stays node-local.
    SetGlobalPinning(
        exec::PinningPlan(exec::DetectTopology(), GlobalThreads()));
    std::unique_ptr<exec::ShardedIndex> sharded;
    index_status =
        exec::ShardedIndex::Create(params.index, dataset, params.epsilon,
                                   params.shards, params.deadline, &sharded);
    index = std::move(sharded);
  } else {
    index_status = CreateIndexChecked(params.index, dataset, params.epsilon,
                                      params.deadline, &index);
  }
  if (!index_status.ok()) {
    out->labels.clear();
    out->num_clusters = 0;
    out->point_types.clear();
    out->stats = ClusteringStats{};
    out->stats.elapsed_seconds = timer.ElapsedSeconds();
    return index_status;
  }
  DBSVEC_RETURN_IF_ERROR(RunDbsvecWithIndex(*index, params, out, model));
  out->stats.elapsed_seconds = timer.ElapsedSeconds();
  return Status::Ok();
}

}  // namespace dbsvec
