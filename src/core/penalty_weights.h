#ifndef DBSVEC_CORE_PENALTY_WEIGHTS_H_
#define DBSVEC_CORE_PENALTY_WEIGHTS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/dataset.h"
#include "common/rng.h"

namespace dbsvec {

/// Options for the adaptive penalty-weight computation.
struct PenaltyWeightOptions {
  /// Memory factor λ > 1 of Eq. 7: old points (large training count t_i)
  /// receive exponentially larger penalty weights, making them *less*
  /// likely to be selected as support vectors.
  double memory_factor = 2.0;
  /// Anchor-sample size m for estimating the kernel distance (Eq. 5). The
  /// exact kernel mean costs O(ñ²); sampling m anchors keeps the weight
  /// pass O(ñ·m), matching the paper's O(ñ) cost claim (Sec. IV-D). Target
  /// sets of at most m points are computed exactly.
  int anchor_count = 256;
  /// Weights are floored at this fraction of their maximum so that no point
  /// is barred outright from support-vector status (ω_i = 0 would force
  /// α_i = 0).
  double weight_floor = 1e-3;
};

/// Computes the adaptive penalty weights ω_i of Eq. 7,
///   ω_i = λ^{t_i} · (1 − D(x_i)/max_j D(x_j)),
/// over `target` (indices into `dataset`), where D is the kernel distance
/// to the target set's kernel-space mean (Eq. 5) under a Gaussian kernel of
/// width `sigma`, and t_i = `train_counts[target[i]]` is the number of
/// SVDD trainings the point has participated in.
///
/// Far-from-center and newly-added points receive small weights — small
/// dual caps ω_iC — which spreads the α mass onto them and makes them more
/// likely to become (boundary) support vectors, exactly the bias Sec. IV-A
/// wants for cluster expansion.
std::vector<double> ComputePenaltyWeights(
    const Dataset& dataset, std::span<const PointIndex> target,
    std::span<const int32_t> train_counts, double sigma,
    const PenaltyWeightOptions& options, Rng* rng);

}  // namespace dbsvec

#endif  // DBSVEC_CORE_PENALTY_WEIGHTS_H_
