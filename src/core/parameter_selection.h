#ifndef DBSVEC_CORE_PARAMETER_SELECTION_H_
#define DBSVEC_CORE_PARAMETER_SELECTION_H_

#include <span>

#include "common/dataset.h"
#include "common/rng.h"

namespace dbsvec {

/// The paper's empirical penalty factor ν* (Eq. 20):
///   ν* = d · sqrt(log_MinPts ñ) / ñ,
/// clamped into [1/ñ, 1] so that at least one support vector exists and the
/// dual stays feasible. `min_pts` must be >= 2 for the logarithm base;
/// smaller values are treated as 2.
double SelectNuStar(int dim, int target_size, int min_pts);

/// The minimal penalty factor ν = 1/ñ used by the DBSVEC_min variant of
/// Table III (fewest possible support vectors).
double SelectNuMin(int target_size);

/// Random kernel width in [min pairwise distance, max pairwise distance] —
/// the DBSVEC\OK ablation of Fig. 9b (no kernel parameter selection
/// strategy). Pairwise extremes are estimated from random pairs of the
/// target set to stay O(ñ).
double RandomSigma(const Dataset& dataset, std::span<const PointIndex> target,
                   Rng* rng);

}  // namespace dbsvec

#endif  // DBSVEC_CORE_PARAMETER_SELECTION_H_
