#ifndef DBSVEC_SERVER_SERVER_H_
#define DBSVEC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "model/overlay_journal.h"
#include "serve/engine_swap.h"
#include "server/durability.h"
#include "server/http.h"
#include "server/retry.h"
#include "server/stats.h"

namespace dbsvec::server {

/// Configuration of one Server instance.
struct ServerOptions {
  /// Bind address; loopback by default (put a real proxy in front for
  /// anything else).
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Event-loop threads (connection I/O + HTTP parsing). One loop handles
  /// thousands of connections; raise this only past one socket's worth of
  /// NIC interrupts.
  int num_io_threads = 1;
  /// Request-processing worker threads (AssignBatch itself additionally
  /// fans out on the global thread pool).
  int num_workers = 2;
  /// Admission control: requests dispatched but not yet answered. At the
  /// bound, /v1/assign and /v1/reload are shed with 503 + Retry-After
  /// (healthz/statz always pass — observability must survive overload).
  int max_inflight = 64;
  /// Default per-request time budget when the client sends no
  /// X-Deadline-Ms header; 0 = unlimited.
  int64_t default_deadline_ms = 0;
  /// Request-body cap; a larger declared Content-Length is answered 413.
  size_t max_body_bytes = 64u << 20;
  /// Cap on points per assign request (defense against a tiny body
  /// declaring a huge binary count is structural; this bounds JSON too).
  uint32_t max_points_per_request = 1u << 20;
  /// Engine construction options used for /v1/reload swaps (index type,
  /// online_refresh, ...). The initial engine is built by the caller.
  AssignmentOptions engine_options;
  /// Retry/backoff policy for model load + index build inside /v1/reload.
  RetryOptions reload_retry;
  /// Absorb core-adjacent assigned points into the engine's dynamic
  /// overlay after each successful /v1/assign (requires
  /// engine_options.online_refresh on the engine actually serving).
  bool online_refresh = false;
  /// Durability of the online overlay (docs/ROBUSTNESS.md). When enabled,
  /// `journal` must be the journal RecoverEngine attached to the initial
  /// engine (and `recovery` its report): the server then runs the
  /// background fsync/checkpoint timer, answers POST /v1/snapshot, keeps
  /// the journal bound across /v1/reload, and reports degraded durability
  /// in /v1/healthz.
  DurabilityOptions durability;
  std::shared_ptr<OverlayJournal> journal;
  RecoveryReport recovery;
};

/// Dependency-free epoll TCP server speaking the minimal HTTP/1.1 subset
/// of docs/SERVING.md over an AssignmentEngine:
///
///   POST /v1/assign   batched point -> label assignment (JSON or binary)
///   GET  /v1/healthz  liveness (+ degraded-durability flag)
///   GET  /v1/statz    counters, latency percentiles, model identity
///   POST /v1/reload   atomic model swap with retry/backoff + rollback
///   POST /v1/snapshot atomic checkpoint of the overlay (durable mode)
///
/// Requests, not datasets, are the unit of work here: connections are
/// multiplexed on epoll event loops, parsed requests flow through a
/// bounded in-flight gate into a worker pool, and responses stream back
/// through the owning loop (partial writes re-armed via EPOLLOUT). Model
/// swaps are RCU-style through EngineHandle: every request pins the
/// engine snapshot it started with, so labels for a fixed snapshot stay
/// bit-identical at any thread count and a reload never tears an
/// in-flight response.
class Server {
 public:
  /// Binds, listens, and starts the loops + workers. On success the
  /// server is live and `*out` owns it; on failure nothing is running.
  static Status Start(std::shared_ptr<AssignmentEngine> engine,
                      const ServerOptions& options,
                      std::unique_ptr<Server>* out);

  /// Graceful stop: closes the listener, waits for in-flight requests to
  /// answer and their responses to flush (bounded by `drain`), then tears
  /// the loops and workers down. Idempotent; also run by the destructor.
  void Shutdown(const Deadline& drain = Deadline::AfterMillis(10'000));

  ~Server();

  /// The bound port (resolves an ephemeral bind).
  int port() const { return port_; }
  const ServerStats& stats() const { return stats_; }
  /// Snapshot of the currently serving engine.
  std::shared_ptr<AssignmentEngine> engine() const { return handle_.Get(); }

  /// The /v1/reload implementation, exposed for tests and operators:
  /// retry/backoff over load + index build, atomic swap, rollback on
  /// failure. `report` (optional) receives the retry trace.
  Status Reload(const std::string& path, const Deadline& deadline,
                RetryReport* report = nullptr);

  /// The /v1/snapshot implementation: folds the live overlay into an
  /// atomic model-v3 snapshot and truncates the journal. Requires durable
  /// mode. `*snapshot_crc` / `*folded_records` (optional) receive the
  /// written snapshot's identity and overlay size.
  Status Snapshot(uint32_t* snapshot_crc = nullptr,
                  uint64_t* folded_records = nullptr);

 private:
  struct Connection;
  struct IoLoop;
  struct RequestWork;

  Server(std::shared_ptr<AssignmentEngine> engine,
         const ServerOptions& options);

  Status Listen();
  Status SpawnThreads();

  void IoLoopMain(IoLoop* loop);
  void WorkerMain();

  // -- Io-thread-only connection handling --------------------------------
  void AdoptIncoming(IoLoop* loop);
  void AcceptReady(IoLoop* loop);
  void OnReadable(IoLoop* loop, const std::shared_ptr<Connection>& conn);
  void FlushWrites(IoLoop* loop, const std::shared_ptr<Connection>& conn);
  void MaybeDispatch(IoLoop* loop, const std::shared_ptr<Connection>& conn);
  void CloseConnection(IoLoop* loop, const std::shared_ptr<Connection>& conn);
  /// Queues `response` straight from the io thread (shed/parse errors).
  void RespondInline(IoLoop* loop, const std::shared_ptr<Connection>& conn,
                     std::string response, bool close_after);

  // -- Worker-side request handling --------------------------------------
  std::string ProcessRequest(const HttpRequest& request,
                             const Deadline& deadline);
  std::string HandleAssign(const HttpRequest& request,
                           const Deadline& deadline);
  std::string HandleStatz();
  std::string HandleReload(const HttpRequest& request,
                           const Deadline& deadline);
  std::string HandleSnapshot(const HttpRequest& request);

  /// Background fsync (interval policy) + periodic checkpoint timer.
  void DurabilityMain();
  /// Appends the response to the connection's out buffer and wakes its
  /// loop. Called from workers (and from RespondInline via the same path).
  void EnqueueResponse(const std::shared_ptr<Connection>& conn,
                       std::string response, bool close_after);

  void WakeLoop(IoLoop* loop);

  const ServerOptions options_;
  EngineHandle handle_;
  ServerStats stats_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::atomic<size_t> next_loop_{0};  // Round-robin connection placement.

  // Worker pool.
  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<RequestWork> queue_;

  std::atomic<int> inflight_{0};           // Dispatched, not yet answered.
  std::atomic<int> pending_responses_{0};  // Answered, not yet flushed.
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stopping_{false};
  // Serializes concurrent /v1/reload requests: swaps stay ordered and a
  // retry storm cannot pile up N simultaneous index builds. Snapshot takes
  // it too, so a checkpoint never interleaves with a journal rebind.
  std::mutex reload_mutex_;
  // Durability timer thread (started only when it has work to do).
  std::thread durability_thread_;
  std::mutex durability_mutex_;
  std::condition_variable durability_cv_;
  bool shutdown_done_ = false;
  std::mutex shutdown_mutex_;
};

}  // namespace dbsvec::server

#endif  // DBSVEC_SERVER_SERVER_H_
