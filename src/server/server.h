#ifndef DBSVEC_SERVER_SERVER_H_
#define DBSVEC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "model/overlay_journal.h"
#include "registry/model_registry.h"
#include "serve/engine_swap.h"
#include "server/durability.h"
#include "server/http.h"
#include "server/retry.h"
#include "server/stats.h"

namespace dbsvec::server {

/// Configuration of one Server instance.
struct ServerOptions {
  /// Bind address; loopback by default (put a real proxy in front for
  /// anything else).
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Event-loop threads (connection I/O + HTTP parsing). One loop handles
  /// thousands of connections; raise this only past one socket's worth of
  /// NIC interrupts.
  int num_io_threads = 1;
  /// Request-processing worker threads (AssignBatch itself additionally
  /// fans out on the global thread pool).
  int num_workers = 2;
  /// Admission control: requests dispatched but not yet answered. At the
  /// bound, assign/reload/refresh/create are shed with 503 + Retry-After
  /// (healthz/statz always pass — observability must survive overload).
  int max_inflight = 64;
  /// Default per-request time budget when the client sends no
  /// X-Deadline-Ms header; 0 = unlimited.
  int64_t default_deadline_ms = 0;
  /// Request-body cap; a larger declared Content-Length is answered 413.
  /// Streaming assign (Content-Type: application/x-dbsvec-stream) is
  /// exempt from this cap body-wide — each frame is capped instead, so an
  /// arbitrarily large stream is processed in bounded memory.
  size_t max_body_bytes = 64u << 20;
  /// Cap on points per assign request (defense against a tiny body
  /// declaring a huge binary count is structural; this bounds JSON too).
  uint32_t max_points_per_request = 1u << 20;
  /// Engine construction options used for reload swaps and registry model
  /// creation (index type, online_refresh, ...). The initial engine is
  /// built by the caller.
  AssignmentOptions engine_options;
  /// Retry/backoff policy for model load + index build inside reloads.
  RetryOptions reload_retry;
  /// Absorb core-adjacent assigned points into the engine's dynamic
  /// overlay after each successful assign (requires
  /// engine_options.online_refresh on the engine actually serving).
  bool online_refresh = false;
  /// Durability of the online overlay (docs/ROBUSTNESS.md). When enabled,
  /// `journal` must be the journal RecoverEngine attached to the initial
  /// engine (and `recovery` its report): the server then runs the
  /// background fsync/checkpoint timer, answers snapshot requests, keeps
  /// journals bound across reloads, and reports degraded durability in
  /// /v1/healthz. With a data_dir, every registry model gets its own
  /// journal/snapshot pair under the same policy.
  DurabilityOptions durability;
  std::shared_ptr<OverlayJournal> journal;
  RecoveryReport recovery;
  /// Multi-tenant model registry (docs/SERVING.md, "Model registry"):
  /// root of the per-model durable layout. Non-empty => every named model
  /// persists under <data_dir>/<name>/ and is recovered at startup; the
  /// initial engine may then be null (a pure-registry server that starts
  /// empty or from recovered models only).
  std::string data_dir;
  /// Hard cap on registered models.
  int max_models = 64;
  /// Per-model in-flight admission limit on assign/refresh requests;
  /// 0 = only the server-wide gate applies.
  int model_max_inflight = 0;
};

/// Dependency-free epoll TCP server speaking the minimal HTTP/1.1 subset
/// of docs/SERVING.md over a registry of AssignmentEngines:
///
///   PUT    /v1/models/<name>          create (upload bytes or {"path": ...})
///   GET    /v1/models/<name>          per-model identity + counters
///   DELETE /v1/models/<name>          unregister + delete on-disk state
///   GET    /v1/models                 list every model
///   POST   /v1/models/<name>/assign   batched point -> label assignment
///   POST   /v1/models/<name>/reload   atomic model swap (retry + rollback)
///   POST   /v1/models/<name>/snapshot atomic overlay checkpoint (durable)
///   POST   /v1/models/<name>/refresh  feed points into the online overlay
///   GET    /v1/healthz                liveness (+ degraded-durability flag)
///   GET    /v1/statz                  counters, percentiles, per-model stats
///
/// The unnamed legacy routes (/v1/assign, /v1/reload, /v1/snapshot,
/// /v1/refresh) alias the model named "default". Assign routes also accept
/// Content-Type: application/x-dbsvec-stream — a framed body processed
/// incrementally with bounded memory, answered as one chunked response
/// (docs/SERVING.md, "Streaming assign").
///
/// Requests, not datasets, are the unit of work here: connections are
/// multiplexed on epoll event loops, parsed requests flow through a
/// bounded in-flight gate into a worker pool, and responses stream back
/// through the owning loop (partial writes re-armed via EPOLLOUT). Model
/// swaps are RCU-style through each entry's EngineHandle: every request
/// pins the engine snapshot it started with, so labels for a fixed
/// snapshot stay bit-identical at any thread count, and neither a reload
/// nor a model delete ever tears an in-flight response.
class Server {
 public:
  /// Binds, listens, and starts the loops + workers. On success the
  /// server is live and `*out` owns it; on failure nothing is running.
  /// `engine` (registered as the model "default") may be null when
  /// options.data_dir is set — the registry then starts from recovery.
  static Status Start(std::shared_ptr<AssignmentEngine> engine,
                      const ServerOptions& options,
                      std::unique_ptr<Server>* out);

  /// Graceful stop: closes the listener, waits for in-flight requests to
  /// answer and their responses to flush (bounded by `drain`), then tears
  /// the loops and workers down. Idempotent; also run by the destructor.
  void Shutdown(const Deadline& drain = Deadline::AfterMillis(10'000));

  ~Server();

  /// The bound port (resolves an ephemeral bind).
  int port() const { return port_; }
  const ServerStats& stats() const { return stats_; }
  /// Snapshot of the engine serving the "default" model (null when no
  /// default model is registered).
  std::shared_ptr<AssignmentEngine> engine() const;
  /// The model registry backing every named route.
  registry::ModelRegistry& registry() { return *registry_; }
  /// What startup recovery found under data_dir (empty report otherwise).
  const registry::RegistryRecoveryReport& registry_recovery() const {
    return registry_recovery_;
  }

  /// The legacy /v1/reload implementation (the "default" model), exposed
  /// for tests and operators: retry/backoff over load + index build,
  /// atomic swap, rollback on failure. `report` (optional) receives the
  /// retry trace.
  Status Reload(const std::string& path, const Deadline& deadline,
                RetryReport* report = nullptr);

  /// The legacy /v1/snapshot implementation (the "default" model): folds
  /// the live overlay into an atomic model-v3 snapshot and truncates the
  /// journal. Requires durable mode. `*snapshot_crc` / `*folded_records`
  /// (optional) receive the written snapshot's identity and overlay size.
  Status Snapshot(uint32_t* snapshot_crc = nullptr,
                  uint64_t* folded_records = nullptr);

 private:
  struct Connection;
  struct IoLoop;
  struct RequestWork;
  struct StreamSession;

  explicit Server(const ServerOptions& options);

  Status Listen();
  Status SpawnThreads();

  void IoLoopMain(IoLoop* loop);
  void WorkerMain();

  // -- Io-thread-only connection handling --------------------------------
  void AdoptIncoming(IoLoop* loop);
  void AcceptReady(IoLoop* loop);
  void OnReadable(IoLoop* loop, const std::shared_ptr<Connection>& conn);
  void FlushWrites(IoLoop* loop, const std::shared_ptr<Connection>& conn);
  void MaybeDispatch(IoLoop* loop, const std::shared_ptr<Connection>& conn);
  void CloseConnection(IoLoop* loop, const std::shared_ptr<Connection>& conn);
  /// Queues `response` straight from the io thread (shed/parse errors).
  void RespondInline(IoLoop* loop, const std::shared_ptr<Connection>& conn,
                     std::string response, bool close_after);

  // -- Streaming assign (io-thread pump + worker frame processing) -------
  /// Admits a parsed streaming head and installs the StreamSession.
  void BeginStream(IoLoop* loop, const std::shared_ptr<Connection>& conn,
                   HttpRequest request, const Deadline& deadline);
  /// Advances the stream state machine: cuts frames out of the parser's
  /// buffered body bytes, dispatches complete frames to workers (reads
  /// pause while one is in flight — the backpressure that bounds memory),
  /// finishes on the zero-length terminator frame.
  void PumpStream(IoLoop* loop, const std::shared_ptr<Connection>& conn);
  void FinishStream(IoLoop* loop, const std::shared_ptr<Connection>& conn,
                    const std::shared_ptr<StreamSession>& session);
  void EndStreamWithError(IoLoop* loop,
                          const std::shared_ptr<Connection>& conn,
                          const std::shared_ptr<StreamSession>& session,
                          const Status& status);
  /// Worker side: one frame -> one response chunk.
  void ProcessStreamFrame(RequestWork& work);
  /// Toggles EPOLLIN on the connection (level-triggered epoll would spin
  /// on unread stream bytes otherwise).
  void SetReadPaused(IoLoop* loop, const std::shared_ptr<Connection>& conn,
                     bool paused);

  // -- Worker-side request handling --------------------------------------
  std::string ProcessRequest(const RequestWork& work);
  std::string HandleAssign(const std::shared_ptr<registry::ModelEntry>& entry,
                           const HttpRequest& request,
                           const Deadline& deadline);
  std::string HandleRefresh(const std::shared_ptr<registry::ModelEntry>& entry,
                            const HttpRequest& request,
                            const Deadline& deadline);
  std::string HandleStatz();
  std::string HandleReload(const std::shared_ptr<registry::ModelEntry>& entry,
                           const HttpRequest& request,
                           const Deadline& deadline);
  std::string HandleSnapshot(
      const std::shared_ptr<registry::ModelEntry>& entry,
      const HttpRequest& request);
  std::string HandleModelCreate(const HttpRequest& request,
                                const std::string& name);
  std::string HandleModelGet(const HttpRequest& request,
                             const std::string& name);
  std::string HandleModelDelete(const HttpRequest& request,
                                const std::string& name);
  std::string HandleModelList(const HttpRequest& request);

  /// Reload/snapshot against a specific entry, mirroring the outcome into
  /// the server-wide counters.
  Status ReloadEntry(const std::shared_ptr<registry::ModelEntry>& entry,
                     const std::string& path, const Deadline& deadline,
                     RetryReport* report);
  Status SnapshotEntry(const std::shared_ptr<registry::ModelEntry>& entry,
                       uint32_t* snapshot_crc, uint64_t* folded_records);

  /// JSON object for one model (GET /v1/models/<name> and the statz
  /// `models` breakdown).
  std::string ModelJson(const std::shared_ptr<registry::ModelEntry>& entry);
  /// `{"<name>": {...}, ...}` across the registry.
  std::string ModelsJson();

  /// Background fsync (interval policy) + periodic checkpoint timer,
  /// sweeping every registered model's journal.
  void DurabilityMain();
  /// Appends the response to the connection's out buffer and wakes its
  /// loop. Called from workers (and from RespondInline via the same path).
  void EnqueueResponse(const std::shared_ptr<Connection>& conn,
                       std::string response, bool close_after);

  void WakeLoop(IoLoop* loop);

  const ServerOptions options_;
  std::unique_ptr<registry::ModelRegistry> registry_;
  registry::RegistryRecoveryReport registry_recovery_;
  ServerStats stats_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::atomic<size_t> next_loop_{0};  // Round-robin connection placement.

  // Worker pool.
  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<RequestWork> queue_;

  std::atomic<int> inflight_{0};           // Dispatched, not yet answered.
  std::atomic<int> pending_responses_{0};  // Answered, not yet flushed.
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stopping_{false};
  // Durability timer thread (started only when it has work to do).
  std::thread durability_thread_;
  std::mutex durability_mutex_;
  std::condition_variable durability_cv_;
  bool shutdown_done_ = false;
  std::mutex shutdown_mutex_;
};

}  // namespace dbsvec::server

#endif  // DBSVEC_SERVER_SERVER_H_
