#include "server/durability.h"

#include <sys/stat.h>

#include <utility>
#include <vector>

#include "model/dbsvec_model.h"

namespace dbsvec::server {
namespace {

bool FileExists(const std::string& path) {
  struct stat st{};
  return !path.empty() && ::stat(path.c_str(), &st) == 0;
}

/// LoadModel under the retry policy: transient I/O errors back off and
/// retry, terminal errors (corrupt file, version skew) fail fast.
Status LoadModelWithRetry(const std::string& path, const RetryOptions& retry,
                          DbsvecModel* model, int* attempts) {
  const RetryPolicy policy(retry);
  RetryReport report;
  const Status status = policy.Run(
      "load " + path, Deadline(), [&] { return LoadModel(path, model); },
      &report);
  if (attempts != nullptr) {
    *attempts += report.attempts;
  }
  return status;
}

}  // namespace

void ResolveDurabilityPaths(const std::string& model_path,
                            DurabilityOptions* durability) {
  if (!durability->enabled) {
    return;
  }
  if (durability->snapshot_path.empty()) {
    durability->snapshot_path = model_path + ".ckpt";
  }
  if (durability->journal_path.empty()) {
    durability->journal_path = model_path + ".wal";
  }
}

Status RecoverEngine(const std::string& model_path,
                     const DurabilityOptions& durability,
                     const AssignmentOptions& engine_options,
                     const RetryOptions& retry,
                     std::unique_ptr<AssignmentEngine>* engine,
                     std::shared_ptr<OverlayJournal>* journal,
                     RecoveryReport* report) {
  RecoveryReport local;
  RecoveryReport& out = report != nullptr ? *report : local;
  out = RecoveryReport();

  DbsvecModel model;
  bool loaded = false;
  if (durability.enabled && FileExists(durability.snapshot_path)) {
    // The checkpoint writer is atomic, so an existing snapshot is normally
    // valid; bit rot or a foreign file falls back to the fitted model (and
    // the journal's base-CRC binding then discards any records that
    // extended the bad snapshot).
    const Status status = LoadModelWithRetry(durability.snapshot_path, retry,
                                             &model, &out.load_attempts);
    if (status.ok()) {
      loaded = true;
      out.loaded_from_snapshot = true;
    }
  }
  if (!loaded) {
    DBSVEC_RETURN_IF_ERROR(
        LoadModelWithRetry(model_path, retry, &model, &out.load_attempts));
  }

  // Durable state implies the absorb path: journal replay and subsequent
  // journaled absorbs both run through AbsorbCoreAdjacent.
  AssignmentOptions options = engine_options;
  options.online_refresh |= durability.enabled;
  std::unique_ptr<AssignmentEngine> recovered;
  DBSVEC_RETURN_IF_ERROR(
      AssignmentEngine::Create(std::move(model), options, &recovered));

  if (durability.enabled) {
    // Replay journaled absorbs through the public absorb path — one-point
    // batches, in record order — so every transform/dedupe/sphere decision
    // re-runs exactly as it did live. The journal is attached only after
    // replay: replayed records must not be re-journaled.
    AssignmentEngine* raw = recovered.get();
    const OverlayJournal::ReplayFn replay =
        [raw](int32_t label, std::span<const double> point) -> Status {
      Dataset one(raw->dim());
      one.Append(point);
      const std::vector<int32_t> labels = {label};
      return raw->AbsorbCoreAdjacent(one, labels);
    };
    std::shared_ptr<OverlayJournal> opened;
    {
      std::unique_ptr<OverlayJournal> owned;
      DBSVEC_RETURN_IF_ERROR(OverlayJournal::Open(
          durability.journal_path, recovered->model_crc(), recovered->dim(),
          durability.fsync, replay, &owned));
      opened = std::move(owned);
    }
    const OverlayJournalStats stats = opened->stats();
    out.records_replayed = stats.records_replayed;
    out.torn_bytes_truncated = stats.torn_bytes_truncated;
    out.journals_discarded = stats.journals_discarded;
    recovered->AttachJournal(opened);
    if (journal != nullptr) {
      *journal = std::move(opened);
    }
  }
  *engine = std::move(recovered);
  return Status::Ok();
}

}  // namespace dbsvec::server
