#ifndef DBSVEC_SERVER_PAYLOAD_H_
#define DBSVEC_SERVER_PAYLOAD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"

namespace dbsvec::server {

/// Assign-request body encodings (docs/SERVING.md, "Wire protocol").
///
/// JSON (`Content-Type: application/json`):
///   {"points": [[x00, x01, ...], [x10, x11, ...], ...]}
/// rows must be rectangular; the parser accepts exactly this shape (plus
/// whitespace) and nothing else — it is a wire-format scanner, not a
/// general JSON library.
///
/// Binary (`Content-Type: application/octet-stream`), all little-endian:
///   u32 count, u32 dim, then count*dim f64 coordinates row-major.
/// The response mirrors the request encoding: JSON {"labels": [...]} or
/// u32 count followed by count i32 labels.
enum class PayloadEncoding { kJson, kBinary };

/// Content-Type of the streaming assign protocol (docs/SERVING.md,
/// "Streaming assign"). The body is a sequence of frames, each a u32 LE
/// payload length followed by a binary assign payload; a zero-length frame
/// terminates the stream. The response is chunked, one binary label chunk
/// (u32 count, count i32 labels) per frame.
inline constexpr std::string_view kStreamContentType =
    "application/x-dbsvec-stream";

/// Picks the encoding from a Content-Type value; defaults to JSON when the
/// header is absent, rejects anything else.
Status EncodingFromContentType(std::string_view content_type,
                               PayloadEncoding* encoding);

/// Parses an assign body into `*points`. `max_points` bounds the decoded
/// row count (ResourceExhausted beyond it); dimensionality is taken from
/// the payload itself and validated by the caller against the model.
Status ParseAssignBody(std::string_view body, PayloadEncoding encoding,
                       uint32_t max_points, Dataset* points);

/// Renders labels in the given encoding.
std::string EncodeAssignResponse(const std::vector<int32_t>& labels,
                                 PayloadEncoding encoding);

/// Content-Type header value of an encoding.
std::string_view ContentTypeName(PayloadEncoding encoding);

}  // namespace dbsvec::server

#endif  // DBSVEC_SERVER_PAYLOAD_H_
