#include "server/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dbsvec::server {

void LatencyHistogram::Record(double micros) {
  // Bucket k covers [2^k, 2^(k+1)) µs; sub-microsecond samples land in
  // bucket 0.
  size_t bucket = 0;
  if (micros >= 1.0) {
    bucket = std::min<size_t>(
        kBuckets - 1, static_cast<size_t>(std::log2(micros)));
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::PercentileMicros(double p) const {
  const uint64_t total = count();
  if (total == 0) {
    return 0.0;
  }
  const uint64_t rank = static_cast<uint64_t>(
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (size_t k = 0; k < kBuckets; ++k) {
    seen += buckets_[k].load(std::memory_order_relaxed);
    if (seen > rank) {
      return std::pow(2.0, static_cast<double>(k + 1));  // Bucket upper bound.
    }
  }
  return std::pow(2.0, static_cast<double>(kBuckets));
}

std::string ServerStats::ToJson(uint32_t model_version, uint32_t model_crc,
                                int model_sv_budget,
                                int model_sample_threshold,
                                uint64_t engine_points_assigned,
                                uint64_t engine_sphere_rejections,
                                uint64_t engine_range_queries, int inflight,
                                int max_inflight, const char* simd_backend,
                                int shard_count,
                                const std::string& cache_manager_json,
                                const std::string& durability_json,
                                const std::string& failpoints_json,
                                const std::string& models_json) const {
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", model_crc);
  std::string out = "{";
  const auto field = [&out](const char* name, uint64_t value, bool last = false) {
    out += "\"";
    out += name;
    out += "\":" + std::to_string(value);
    if (!last) {
      out += ",";
    }
  };
  out += "\"model_version\":" + std::to_string(model_version) + ",";
  out += "\"model_crc\":\"" + std::string(crc_hex) + "\",";
  out += "\"model_sv_budget\":" + std::to_string(model_sv_budget) + ",";
  out += "\"model_sample_threshold\":" +
         std::to_string(model_sample_threshold) + ",";
  field("connections_accepted",
        connections_accepted.load(std::memory_order_relaxed));
  field("connections_rejected",
        connections_rejected.load(std::memory_order_relaxed));
  field("requests_total", requests_total.load(std::memory_order_relaxed));
  field("requests_assign", requests_assign.load(std::memory_order_relaxed));
  field("requests_stream", requests_stream.load(std::memory_order_relaxed));
  field("stream_frames", stream_frames.load(std::memory_order_relaxed));
  field("models_created", models_created.load(std::memory_order_relaxed));
  field("models_deleted", models_deleted.load(std::memory_order_relaxed));
  field("requests_bad", requests_bad.load(std::memory_order_relaxed));
  field("requests_shed", requests_shed.load(std::memory_order_relaxed));
  field("num_deadline_hits",
        num_deadline_hits.load(std::memory_order_relaxed));
  field("points_assigned", points_assigned.load(std::memory_order_relaxed));
  field("reloads_ok", reloads_ok.load(std::memory_order_relaxed));
  field("reloads_failed", reloads_failed.load(std::memory_order_relaxed));
  field("reload_attempts", reload_attempts.load(std::memory_order_relaxed));
  field("cores_absorbed", cores_absorbed.load(std::memory_order_relaxed));
  field("refresh_failures", refresh_failures.load(std::memory_order_relaxed));
  field("checkpoints_ok", checkpoints_ok.load(std::memory_order_relaxed));
  field("checkpoints_failed",
        checkpoints_failed.load(std::memory_order_relaxed));
  field("engine_points_assigned", engine_points_assigned);
  field("engine_sphere_rejections", engine_sphere_rejections);
  field("engine_range_queries", engine_range_queries);
  out += "\"inflight\":" + std::to_string(inflight) + ",";
  out += "\"max_inflight\":" + std::to_string(max_inflight) + ",";
  out += "\"simd_backend\":\"" + std::string(simd_backend) + "\",";
  out += "\"shard_count\":" + std::to_string(shard_count) + ",";
  out += "\"assign_latency_p50_us\":" +
         std::to_string(assign_latency.PercentileMicros(50.0)) + ",";
  out += "\"assign_latency_p99_us\":" +
         std::to_string(assign_latency.PercentileMicros(99.0));
  if (!cache_manager_json.empty()) {
    out += ",\"cache_manager\":" + cache_manager_json;
  }
  if (!durability_json.empty()) {
    out += ",\"durability\":" + durability_json;
  }
  if (!failpoints_json.empty()) {
    out += ",\"failpoints\":" + failpoints_json;
  }
  if (!models_json.empty()) {
    out += ",\"models\":" + models_json;
  }
  out += "}";
  return out;
}

}  // namespace dbsvec::server
