#include "server/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "server/http.h"
#include "server/payload.h"

namespace dbsvec::server {

std::string_view HttpResponse::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (AsciiCaseEqual(key, name)) {
      return value;
    }
  }
  return {};
}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  residual_.clear();
}

Status HttpClient::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("client: socket: ") +
                           std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("client: bad address '" + host + "'");
  }
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const Status status = Status::IoError(
        "client: connect " + host + ":" + std::to_string(port) + ": " +
        std::strerror(errno));
    Close();
    return status;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

namespace {

Status SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(std::string("client: send: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status HttpClient::Roundtrip(std::string_view method, std::string_view target,
                             std::string_view content_type,
                             std::string_view body,
                             const std::vector<std::string>& extra_headers,
                             HttpResponse* response) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client: not connected");
  }
  std::string request;
  request.reserve(256 + body.size());
  request.append(method).append(" ").append(target).append(" HTTP/1.1\r\n");
  request.append("Host: dbsvec\r\n");
  if (!body.empty() || method == "POST") {
    if (!content_type.empty()) {
      request.append("Content-Type: ").append(content_type).append("\r\n");
    }
    request.append("Content-Length: ")
        .append(std::to_string(body.size()))
        .append("\r\n");
  }
  for (const std::string& header : extra_headers) {
    request.append(header).append("\r\n");
  }
  request.append("\r\n").append(body);
  DBSVEC_RETURN_IF_ERROR(SendAll(fd_, request));

  // Read the response: head first, then exactly Content-Length body bytes.
  std::string buffer = std::move(residual_);
  residual_.clear();
  const auto read_more = [this, &buffer]() -> Status {
    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IoError("client: connection closed mid-response");
    }
    if (n < 0) {
      if (errno == EINTR) {
        return Status::Ok();
      }
      return Status::IoError(std::string("client: recv: ") +
                             std::strerror(errno));
    }
    buffer.append(chunk, static_cast<size_t>(n));
    return Status::Ok();
  };
  size_t head_end;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    DBSVEC_RETURN_IF_ERROR(read_more());
  }

  response->status_code = 0;
  response->headers.clear();
  response->body.clear();
  const std::string_view head(buffer.data(), head_end);
  size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) {
    line_end = head.size();
  }
  const std::string_view status_line = head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  const size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || status_line.size() < sp + 4) {
    return Status::IoError("client: malformed status line '" +
                           std::string(status_line) + "'");
  }
  response->status_code =
      std::atoi(std::string(status_line.substr(sp + 1, 3)).c_str());

  size_t content_length = 0;
  size_t cursor = line_end + 2;
  while (cursor < head.size()) {
    size_t next = head.find("\r\n", cursor);
    if (next == std::string_view::npos) {
      next = head.size();
    }
    const std::string_view line = head.substr(cursor, next - cursor);
    cursor = next + 2;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      continue;
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    response->headers.emplace_back(std::string(line.substr(0, colon)),
                                   std::string(value));
    if (AsciiCaseEqual(line.substr(0, colon), "Content-Length")) {
      content_length =
          static_cast<size_t>(std::atoll(std::string(value).c_str()));
    }
  }

  const size_t body_start = head_end + 4;
  while (buffer.size() < body_start + content_length) {
    DBSVEC_RETURN_IF_ERROR(read_more());
  }
  response->body = buffer.substr(body_start, content_length);
  residual_ = buffer.substr(body_start + content_length);
  return Status::Ok();
}

Status HttpClient::StreamingRoundtrip(std::string_view target,
                                      const std::vector<std::string>& frames,
                                      std::vector<std::string>* chunks,
                                      HttpResponse* response) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client: not connected");
  }
  chunks->clear();
  response->status_code = 0;
  response->headers.clear();
  response->body.clear();

  uint64_t total = 4;  // Terminator frame.
  for (const std::string& frame : frames) {
    total += 4 + frame.size();
  }
  std::string head_request;
  head_request.append("POST ").append(target).append(" HTTP/1.1\r\n");
  head_request.append("Host: dbsvec\r\n");
  head_request.append("Content-Type: ").append(kStreamContentType);
  head_request.append("\r\nContent-Length: ")
      .append(std::to_string(total))
      .append("\r\n\r\n");
  Status send_status = SendAll(fd_, head_request);

  std::string buffer = std::move(residual_);
  residual_.clear();
  const auto read_more = [this, &buffer]() -> Status {
    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IoError("client: connection closed mid-response");
    }
    if (n < 0) {
      if (errno == EINTR) {
        return Status::Ok();
      }
      return Status::IoError(std::string("client: recv: ") +
                             std::strerror(errno));
    }
    buffer.append(chunk, static_cast<size_t>(n));
    return Status::Ok();
  };

  bool head_parsed = false;
  bool chunked = false;
  size_t content_length = 0;
  const auto parse_head = [&]() -> Status {
    size_t head_end;
    while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      DBSVEC_RETURN_IF_ERROR(read_more());
    }
    const std::string_view head(buffer.data(), head_end);
    size_t line_end = head.find("\r\n");
    if (line_end == std::string_view::npos) {
      line_end = head.size();
    }
    const std::string_view status_line = head.substr(0, line_end);
    const size_t sp = status_line.find(' ');
    if (sp == std::string_view::npos || status_line.size() < sp + 4) {
      return Status::IoError("client: malformed status line '" +
                             std::string(status_line) + "'");
    }
    response->status_code =
        std::atoi(std::string(status_line.substr(sp + 1, 3)).c_str());
    size_t cursor = line_end + 2;
    while (cursor < head.size()) {
      size_t next = head.find("\r\n", cursor);
      if (next == std::string_view::npos) {
        next = head.size();
      }
      const std::string_view line = head.substr(cursor, next - cursor);
      cursor = next + 2;
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        continue;
      }
      std::string_view value = line.substr(colon + 1);
      while (!value.empty() &&
             (value.front() == ' ' || value.front() == '\t')) {
        value.remove_prefix(1);
      }
      response->headers.emplace_back(std::string(line.substr(0, colon)),
                                     std::string(value));
      if (AsciiCaseEqual(line.substr(0, colon), "Content-Length")) {
        content_length =
            static_cast<size_t>(std::atoll(std::string(value).c_str()));
      } else if (AsciiCaseEqual(line.substr(0, colon), "Transfer-Encoding")) {
        chunked = AsciiCaseEqual(value, "chunked");
      }
    }
    buffer.erase(0, head_end + 4);
    head_parsed = true;
    return Status::Ok();
  };
  // Reads one response chunk into `*out` (terminal chunk → empty).
  const auto read_chunk = [&](std::string* out) -> Status {
    size_t line_end;
    while ((line_end = buffer.find("\r\n")) == std::string::npos) {
      DBSVEC_RETURN_IF_ERROR(read_more());
    }
    const size_t size = static_cast<size_t>(
        std::strtoull(buffer.substr(0, line_end).c_str(), nullptr, 16));
    const size_t need = line_end + 2 + size + 2;
    while (buffer.size() < need) {
      DBSVEC_RETURN_IF_ERROR(read_more());
    }
    out->assign(buffer, line_end + 2, size);
    buffer.erase(0, need);
    return Status::Ok();
  };
  // Fixed-length (non-chunked) response: the server rejected the stream
  // before its first frame answered. Hand the error body back.
  const auto finish_plain = [&]() -> Status {
    while (buffer.size() < content_length) {
      DBSVEC_RETURN_IF_ERROR(read_more());
    }
    response->body = buffer.substr(0, content_length);
    residual_ = buffer.substr(content_length);
    return Status::Ok();
  };

  for (const std::string& frame : frames) {
    if (send_status.ok()) {
      std::string framed;
      framed.reserve(4 + frame.size());
      const uint32_t len = static_cast<uint32_t>(frame.size());
      framed.append(reinterpret_cast<const char*>(&len), 4);
      framed.append(frame);
      send_status = SendAll(fd_, framed);
    }
    if (!send_status.ok()) {
      break;
    }
    if (!head_parsed) {
      DBSVEC_RETURN_IF_ERROR(parse_head());
      if (!chunked) {
        return finish_plain();
      }
    }
    std::string payload;
    DBSVEC_RETURN_IF_ERROR(read_chunk(&payload));
    if (payload.empty()) {
      return Status::IoError("client: stream ended before every frame");
    }
    chunks->push_back(std::move(payload));
  }
  if (send_status.ok()) {
    const uint32_t zero = 0;
    send_status =
        SendAll(fd_, std::string_view(reinterpret_cast<const char*>(&zero), 4));
  }
  if (!send_status.ok()) {
    // The server may have rejected the stream and closed; whatever error
    // response it flushed beats the raw EPIPE.
    if (!head_parsed && !parse_head().ok()) {
      return send_status;
    }
    if (!chunked) {
      return finish_plain().ok() ? Status::Ok() : send_status;
    }
    return send_status;
  }
  if (!head_parsed) {
    DBSVEC_RETURN_IF_ERROR(parse_head());
    if (!chunked) {
      return finish_plain();
    }
  }
  std::string terminal;
  DBSVEC_RETURN_IF_ERROR(read_chunk(&terminal));
  if (!terminal.empty()) {
    return Status::IoError("client: expected terminal chunk, got " +
                           std::to_string(terminal.size()) + " bytes");
  }
  residual_ = std::move(buffer);
  return Status::Ok();
}

}  // namespace dbsvec::server
