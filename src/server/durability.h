#ifndef DBSVEC_SERVER_DURABILITY_H_
#define DBSVEC_SERVER_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "model/overlay_journal.h"
#include "serve/assignment_engine.h"
#include "server/retry.h"

namespace dbsvec::server {

/// Durability configuration of the serving path (docs/ROBUSTNESS.md).
struct DurabilityOptions {
  /// Master switch; off leaves serving exactly as before (in-memory
  /// overlay, no journal, no checkpoints).
  bool enabled = false;
  /// Atomic checkpoint artifact. Defaults to `<model>.ckpt` (see
  /// ResolveDurabilityPaths); preferred over the fitted model at startup
  /// when present and valid.
  std::string snapshot_path;
  /// Overlay write-ahead journal. Defaults to `<model>.wal`.
  std::string journal_path;
  FsyncPolicy fsync = FsyncPolicy::kInterval;
  /// kInterval only: period of the background fsync.
  int64_t fsync_interval_ms = 50;
  /// Period of automatic checkpoints; 0 = manual only (POST /v1/snapshot).
  int64_t checkpoint_interval_ms = 0;
};

/// Fills empty snapshot/journal paths from `model_path` (`<model>.ckpt` /
/// `<model>.wal`). No-op when durability is disabled.
void ResolveDurabilityPaths(const std::string& model_path,
                            DurabilityOptions* durability);

/// What startup recovery found and did; surfaced in /v1/statz and the
/// serve banner.
struct RecoveryReport {
  bool loaded_from_snapshot = false;
  int load_attempts = 0;  ///< Model-load tries (RetryPolicy, satellite 2).
  uint64_t records_replayed = 0;
  uint64_t torn_bytes_truncated = 0;
  uint64_t journals_discarded = 0;
};

/// Builds the serving engine with full crash recovery:
///
///   1. Load the snapshot if it exists (falling back to `model_path` when
///      it is unreadable or corrupt), retrying transient I/O errors under
///      `retry`.
///   2. Build the engine; a v3 snapshot seeds its overlay.
///   3. Open the journal bound to the loaded artifact's payload CRC,
///      replay every intact record in order through AbsorbCoreAdjacent
///      (truncating a torn tail), and attach it for subsequent absorbs.
///
/// The result is bit-identical to the engine that wrote the journal: the
/// journal holds raw points in absorb order, and absorb decisions depend
/// only on (model, overlay state), both reproduced exactly.
///
/// With durability disabled this is a plain load + engine build, still
/// under `retry` (startup transient-I/O resilience costs nothing).
/// `journal`/`report` may be null.
Status RecoverEngine(const std::string& model_path,
                     const DurabilityOptions& durability,
                     const AssignmentOptions& engine_options,
                     const RetryOptions& retry,
                     std::unique_ptr<AssignmentEngine>* engine,
                     std::shared_ptr<OverlayJournal>* journal,
                     RecoveryReport* report);

}  // namespace dbsvec::server

#endif  // DBSVEC_SERVER_DURABILITY_H_
