#include "server/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.h"

namespace dbsvec::server {

RetryPolicy::RetryPolicy(const RetryOptions& options) : options_(options) {
  options_.max_attempts = std::max(1, options_.max_attempts);
  options_.initial_backoff_ms = std::max(0.0, options_.initial_backoff_ms);
  options_.backoff_multiplier = std::max(1.0, options_.backoff_multiplier);
  options_.max_backoff_ms =
      std::max(options_.initial_backoff_ms, options_.max_backoff_ms);
  options_.jitter = std::clamp(options_.jitter, 0.0, 1.0);
}

bool RetryPolicy::IsRetryable(const Status& status) {
  switch (status.code()) {
    case Status::Code::kIoError:
    case Status::Code::kResourceExhausted:
    case Status::Code::kUnavailable:
      return true;
    default:
      return false;
  }
}

std::vector<double> RetryPolicy::BackoffScheduleMs() const {
  Rng rng(options_.seed);
  std::vector<double> schedule;
  double base = options_.initial_backoff_ms;
  for (int retry = 0; retry + 1 < options_.max_attempts; ++retry) {
    const double factor =
        1.0 + options_.jitter * (2.0 * rng.NextDouble() - 1.0);
    schedule.push_back(base * factor);
    base = std::min(base * options_.backoff_multiplier,
                    options_.max_backoff_ms);
  }
  return schedule;
}

Status RetryPolicy::Run(std::string_view what, const Deadline& deadline,
                        const std::function<Status()>& op,
                        RetryReport* report) const {
  const std::vector<double> schedule = BackoffScheduleMs();
  RetryReport local;
  RetryReport& out = report != nullptr ? *report : local;
  out = RetryReport();
  Status last;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    DBSVEC_RETURN_IF_ERROR(deadline.Check(what));
    ++out.attempts;
    last = op();
    if (last.ok() || !IsRetryable(last)) {
      return last;
    }
    if (attempt + 1 >= options_.max_attempts) {
      break;
    }
    const double sleep_ms = schedule[static_cast<size_t>(attempt)];
    out.backoffs_ms.push_back(sleep_ms);
    // Sleep in small slices so an expiring deadline or cancellation cuts
    // the wait short instead of stalling a whole max_backoff.
    auto remaining = std::chrono::duration<double, std::milli>(sleep_ms);
    while (remaining.count() > 0.0) {
      if (deadline.Expired()) {
        return deadline.Check(what);
      }
      const auto slice = std::min(
          remaining, std::chrono::duration<double, std::milli>(10.0));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
  }
  out.exhausted = true;
  return Status::Unavailable(
      std::string(what) + ": retry budget exhausted after " +
      std::to_string(out.attempts) + " attempts (last: " + last.ToString() +
      ")");
}

}  // namespace dbsvec::server
