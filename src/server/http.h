#ifndef DBSVEC_SERVER_HTTP_H_
#define DBSVEC_SERVER_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dbsvec::server {

/// One parsed HTTP/1.1 request. The server speaks a minimal, dependency-free
/// subset of the protocol (docs/SERVING.md, "Wire protocol"): request line +
/// headers + an optional Content-Length body. Chunked transfer encoding,
/// multi-line headers, and trailers are rejected with 400.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (uppercase as received).
  std::string target;  ///< Path of the request line ("/v1/assign").
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;  ///< false on "Connection: close".

  /// Value of the first header matching `name` (case-insensitive), or ""
  /// when absent.
  std::string_view Header(std::string_view name) const;
};

/// Incremental HTTP/1.1 request parser: feed bytes as they arrive off the
/// socket, harvest complete requests. One parser per connection; the parser
/// retains partial data between Feed calls, so a request split across any
/// number of reads parses identically to one delivered whole.
class HttpParser {
 public:
  explicit HttpParser(size_t max_body_bytes) : max_body_bytes_(max_body_bytes) {}

  /// Appends `data` to the connection buffer. Returns InvalidArgument for a
  /// malformed request line/headers and ResourceExhausted when the declared
  /// body exceeds the configured cap; both are terminal for the connection.
  Status Feed(std::string_view data);

  /// True when a complete request is buffered; `*out` receives it and the
  /// parser advances past it (pipelined bytes are retained for the next
  /// call). False when more bytes are needed.
  bool Next(HttpRequest* out);

 private:
  Status ParseHead(std::string_view head, HttpRequest* request);

  size_t max_body_bytes_;
  std::string buffer_;
  // Parsed-but-unfinished request: head consumed, waiting for body bytes.
  bool head_done_ = false;
  size_t body_needed_ = 0;
  HttpRequest pending_;
  bool ready_ = false;
};

/// Serializes a response with the given status code, reason inferred from
/// the code, Content-Type and body; always emits Content-Length. Extra
/// headers are appended verbatim (each "Name: value", no CRLF).
std::string SerializeResponse(int status_code, std::string_view content_type,
                              std::string_view body,
                              const std::vector<std::string>& extra_headers = {},
                              bool keep_alive = true);

/// Canonical reason phrase of a status code ("OK", "Bad Request", ...).
std::string_view ReasonPhrase(int status_code);

/// Maps a library Status to the HTTP status code the wire protocol
/// prescribes (docs/SERVING.md): OK=200, InvalidArgument=400, NotFound=404,
/// FailedPrecondition=412, DeadlineExceeded=504, Unavailable /
/// ResourceExhausted / IoError=503, Internal (and anything else)=500.
int HttpStatusFromStatus(const Status& status);

/// ASCII case-insensitive string equality (header names, header values).
bool AsciiCaseEqual(std::string_view a, std::string_view b);

}  // namespace dbsvec::server

#endif  // DBSVEC_SERVER_HTTP_H_
