#ifndef DBSVEC_SERVER_HTTP_H_
#define DBSVEC_SERVER_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dbsvec::server {

/// One parsed HTTP/1.1 request. The server speaks a minimal, dependency-free
/// subset of the protocol (docs/SERVING.md, "Wire protocol"): request line +
/// headers + an optional Content-Length body. Chunked transfer encoding,
/// multi-line headers, and trailers are rejected with 400.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (uppercase as received).
  std::string target;  ///< Path of the request line ("/v1/assign").
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;  ///< false on "Connection: close".
  /// True when the stream predicate claimed this request: `body` is empty
  /// and the declared Content-Length bytes flow through TakeStreamBytes.
  bool is_stream = false;
  uint64_t stream_length = 0;  ///< Declared Content-Length of the stream.

  /// Value of the first header matching `name` (case-insensitive), or ""
  /// when absent.
  std::string_view Header(std::string_view name) const;
};

/// Incremental HTTP/1.1 request parser: feed bytes as they arrive off the
/// socket, harvest complete requests. One parser per connection; the parser
/// retains partial data between Feed calls, so a request split across any
/// number of reads parses identically to one delivered whole.
class HttpParser {
 public:
  explicit HttpParser(size_t max_body_bytes) : max_body_bytes_(max_body_bytes) {}

  /// Appends `data` to the connection buffer. Returns InvalidArgument for a
  /// malformed request line/headers and ResourceExhausted when the declared
  /// body exceeds the configured cap; both are terminal for the connection.
  Status Feed(std::string_view data);

  /// True when a complete request is buffered; `*out` receives it and the
  /// parser advances past it (pipelined bytes are retained for the next
  /// call). False when more bytes are needed.
  bool Next(HttpRequest* out);

  /// True when Next would succeed (a complete request, or a streaming head,
  /// is buffered and unharvested).
  bool HasReady() const { return ready_; }

  /// Streaming bodies: when the predicate returns true for a parsed head,
  /// the request is delivered immediately with `is_stream` set and an empty
  /// `body`; its Content-Length is exempt from the body cap and the body
  /// bytes are drained incrementally via TakeStreamBytes. This is how
  /// bodies larger than max_body_bytes are processed in bounded memory
  /// (docs/SERVING.md, "Streaming assign").
  using StreamPredicate = std::function<bool(const HttpRequest&)>;
  void SetStreamPredicate(StreamPredicate predicate) {
    stream_predicate_ = std::move(predicate);
  }

  /// Moves up to `max` buffered stream-body bytes into `*out` (appended).
  /// Returns the number of bytes taken. Once the declared length has been
  /// consumed the stream deactivates and pipelined bytes parse normally.
  size_t TakeStreamBytes(size_t max, std::string* out);

  /// Stream-body bytes not yet taken (0 once the stream is fully drained).
  uint64_t stream_remaining() const { return stream_remaining_; }
  /// True while a streaming body is being drained.
  bool stream_active() const { return stream_active_; }

 private:
  Status ParseHead(std::string_view head, HttpRequest* request);

  size_t max_body_bytes_;
  std::string buffer_;
  // Parsed-but-unfinished request: head consumed, waiting for body bytes.
  bool head_done_ = false;
  size_t body_needed_ = 0;
  HttpRequest pending_;
  bool ready_ = false;
  StreamPredicate stream_predicate_;
  bool stream_active_ = false;
  uint64_t stream_remaining_ = 0;
};

/// Serializes a response with the given status code, reason inferred from
/// the code, Content-Type and body; always emits Content-Length. Extra
/// headers are appended verbatim (each "Name: value", no CRLF).
std::string SerializeResponse(int status_code, std::string_view content_type,
                              std::string_view body,
                              const std::vector<std::string>& extra_headers = {},
                              bool keep_alive = true);

/// Serializes the head of a `Transfer-Encoding: chunked` response (status
/// line + headers + blank line, no body). Chunks follow via EncodeChunk;
/// the terminal chunk is EncodeChunk("").
std::string SerializeChunkedResponseHead(
    int status_code, std::string_view content_type,
    const std::vector<std::string>& extra_headers = {}, bool keep_alive = true);

/// One chunk of a chunked response body: hex size, CRLF, payload, CRLF.
/// An empty payload encodes the terminal "0\r\n\r\n" chunk.
std::string EncodeChunk(std::string_view payload);

/// Canonical reason phrase of a status code ("OK", "Bad Request", ...).
std::string_view ReasonPhrase(int status_code);

/// Maps a library Status to the HTTP status code the wire protocol
/// prescribes (docs/SERVING.md): OK=200, InvalidArgument=400, NotFound=404,
/// AlreadyExists=409, FailedPrecondition=412, DeadlineExceeded=504,
/// Unavailable / ResourceExhausted / IoError=503, Internal (and anything
/// else)=500.
int HttpStatusFromStatus(const Status& status);

/// ASCII case-insensitive string equality (header names, header values).
bool AsciiCaseEqual(std::string_view a, std::string_view b);

}  // namespace dbsvec::server

#endif  // DBSVEC_SERVER_HTTP_H_
