#ifndef DBSVEC_SERVER_HTTP_CLIENT_H_
#define DBSVEC_SERVER_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dbsvec::server {

/// One HTTP response as seen by the client.
struct HttpResponse {
  int status_code = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header matching `name` (case-insensitive), or "".
  std::string_view Header(std::string_view name) const;
};

/// Minimal blocking HTTP/1.1 client over one TCP connection, sufficient to
/// drive this repo's server from tests, the load-generator tool, and the
/// serving benchmark. Keep-alive: one Connect, many Roundtrips. Not thread
/// safe — use one client per driving thread.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  Status Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one request and blocks for the full response. `extra_headers`
  /// entries are verbatim "Name: value" lines. A body is sent with
  /// Content-Length whenever non-empty or the method is POST.
  Status Roundtrip(std::string_view method, std::string_view target,
                   std::string_view content_type, std::string_view body,
                   const std::vector<std::string>& extra_headers,
                   HttpResponse* response);

  /// Drives one streaming-assign request (kStreamContentType framing):
  /// sends the request head with a Content-Length covering every frame plus
  /// the terminator, then writes each frame and reads its chunked label
  /// payload before sending the next — lock-step, so neither side ever
  /// holds more than one frame. `frames` are pre-encoded binary assign
  /// payloads; each response chunk is appended to `*chunks` verbatim. When
  /// the server rejects the stream with a plain (non-chunked) error
  /// response, that response lands in `*response` and the call returns Ok —
  /// check `response->status_code`.
  Status StreamingRoundtrip(std::string_view target,
                            const std::vector<std::string>& frames,
                            std::vector<std::string>* chunks,
                            HttpResponse* response);

 private:
  int fd_ = -1;
  std::string residual_;  // Bytes past the previous response (keep-alive).
};

}  // namespace dbsvec::server

#endif  // DBSVEC_SERVER_HTTP_CLIENT_H_
