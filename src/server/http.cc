#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dbsvec::server {
namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHeadEnd = "\r\n\r\n";
/// Head cap independent of the body cap: no request line + header block is
/// legitimately this large, and an unbounded head would let a client grow
/// the connection buffer without ever completing a request.
constexpr size_t kMaxHeadBytes = 16 * 1024;

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

bool AsciiCaseEqual(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (AsciiCaseEqual(key, name)) {
      return value;
    }
  }
  return {};
}

Status HttpParser::ParseHead(std::string_view head, HttpRequest* request) {
  const size_t line_end = head.find(kCrlf);
  const std::string_view request_line = head.substr(0, line_end);
  const size_t method_end = request_line.find(' ');
  if (method_end == std::string_view::npos) {
    return Status::InvalidArgument("http: malformed request line");
  }
  const size_t target_end = request_line.find(' ', method_end + 1);
  if (target_end == std::string_view::npos) {
    return Status::InvalidArgument("http: malformed request line");
  }
  request->method = std::string(request_line.substr(0, method_end));
  request->target = std::string(
      request_line.substr(method_end + 1, target_end - method_end - 1));
  const std::string_view version = request_line.substr(target_end + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::InvalidArgument("http: unsupported version '" +
                                   std::string(version) + "'");
  }
  request->keep_alive = version == "HTTP/1.1";
  if (request->method.empty() || request->target.empty() ||
      request->target[0] != '/') {
    return Status::InvalidArgument("http: malformed request line");
  }

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t end = head.find(kCrlf, pos);
    if (end == std::string_view::npos) {
      end = head.size();
    }
    const std::string_view line = head.substr(pos, end - pos);
    pos = end + 2;
    if (line.empty()) {
      continue;
    }
    if (line.front() == ' ' || line.front() == '\t') {
      return Status::InvalidArgument("http: obsolete line folding");
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("http: malformed header line");
    }
    request->headers.emplace_back(std::string(line.substr(0, colon)),
                                  std::string(Trim(line.substr(colon + 1))));
  }

  if (const std::string_view connection = request->Header("Connection");
      !connection.empty()) {
    request->keep_alive = !AsciiCaseEqual(connection, "close");
  }
  if (!request->Header("Transfer-Encoding").empty()) {
    return Status::InvalidArgument("http: chunked bodies are not supported");
  }
  return Status::Ok();
}

Status HttpParser::Feed(std::string_view data) {
  buffer_.append(data);
  // While a streaming body is being drained the buffer only accumulates;
  // TakeStreamBytes consumes it and re-enters parsing once the declared
  // length is exhausted.
  while (!ready_ && !stream_active_) {
    if (!head_done_) {
      const size_t head_end = buffer_.find(kHeadEnd);
      if (head_end == std::string::npos) {
        if (buffer_.size() > kMaxHeadBytes) {
          return Status::InvalidArgument("http: request head too large");
        }
        return Status::Ok();  // Need more bytes.
      }
      pending_ = HttpRequest();
      DBSVEC_RETURN_IF_ERROR(
          ParseHead(std::string_view(buffer_).substr(0, head_end), &pending_));
      buffer_.erase(0, head_end + kHeadEnd.size());
      body_needed_ = 0;
      uint64_t declared_length = 0;
      if (const std::string_view length = pending_.Header("Content-Length");
          !length.empty()) {
        char* end = nullptr;
        const std::string length_str(length);
        const unsigned long long parsed =
            std::strtoull(length_str.c_str(), &end, 10);
        if (end == length_str.c_str() || *end != '\0') {
          return Status::InvalidArgument("http: bad Content-Length '" +
                                         length_str + "'");
        }
        declared_length = parsed;
      }
      if (stream_predicate_ && stream_predicate_(pending_)) {
        // Streaming body: deliver the head now; the body is exempt from the
        // cap and drains through TakeStreamBytes in bounded pieces.
        pending_.is_stream = true;
        pending_.stream_length = declared_length;
        head_done_ = false;
        ready_ = true;
        return Status::Ok();
      }
      if (declared_length > max_body_bytes_) {
        return Status::ResourceExhausted(
            "http: body of " + std::to_string(declared_length) +
            " bytes exceeds the " + std::to_string(max_body_bytes_) +
            "-byte cap");
      }
      body_needed_ = static_cast<size_t>(declared_length);
      head_done_ = true;
    }
    if (buffer_.size() < body_needed_) {
      return Status::Ok();  // Need more body bytes.
    }
    pending_.body = buffer_.substr(0, body_needed_);
    buffer_.erase(0, body_needed_);
    head_done_ = false;
    ready_ = true;
  }
  return Status::Ok();
}

bool HttpParser::Next(HttpRequest* out) {
  if (!ready_) {
    return false;
  }
  *out = std::move(pending_);
  pending_ = HttpRequest();
  ready_ = false;
  if (out->is_stream) {
    stream_active_ = out->stream_length > 0;
    stream_remaining_ = out->stream_length;
    return true;
  }
  // Pipelined bytes already buffered may complete the next request.
  if (!buffer_.empty()) {
    std::string carry;
    carry.swap(buffer_);
    (void)Feed(carry);  // Errors resurface on the caller's next Feed.
  }
  return true;
}

size_t HttpParser::TakeStreamBytes(size_t max, std::string* out) {
  if (!stream_active_ || max == 0) {
    return 0;
  }
  const size_t take = static_cast<size_t>(
      std::min<uint64_t>({stream_remaining_, buffer_.size(), max}));
  out->append(buffer_, 0, take);
  buffer_.erase(0, take);
  stream_remaining_ -= take;
  if (stream_remaining_ == 0) {
    stream_active_ = false;
    // Pipelined bytes behind the stream body parse as the next request.
    if (!buffer_.empty()) {
      std::string carry;
      carry.swap(buffer_);
      (void)Feed(carry);  // Errors resurface on the caller's next Feed.
    }
  }
  return take;
}

std::string_view ReasonPhrase(int status_code) {
  switch (status_code) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 412:
      return "Precondition Failed";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

int HttpStatusFromStatus(const Status& status) {
  switch (status.code()) {
    case Status::Code::kOk:
      return 200;
    case Status::Code::kInvalidArgument:
      return 400;
    case Status::Code::kNotFound:
      return 404;
    case Status::Code::kFailedPrecondition:
      return 412;
    case Status::Code::kAlreadyExists:
      return 409;
    case Status::Code::kDeadlineExceeded:
      return 504;
    case Status::Code::kIoError:
    case Status::Code::kResourceExhausted:
    case Status::Code::kUnavailable:
      return 503;
    case Status::Code::kInternal:
      return 500;
  }
  return 500;
}

std::string SerializeResponse(int status_code, std::string_view content_type,
                              std::string_view body,
                              const std::vector<std::string>& extra_headers,
                              bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(status_code) + " ";
  out += ReasonPhrase(status_code);
  out += kCrlf;
  out += "Content-Type: ";
  out += content_type;
  out += kCrlf;
  out += "Content-Length: " + std::to_string(body.size());
  out += kCrlf;
  if (!keep_alive) {
    out += "Connection: close";
    out += kCrlf;
  }
  for (const std::string& header : extra_headers) {
    out += header;
    out += kCrlf;
  }
  out += kCrlf;
  out += body;
  return out;
}

std::string SerializeChunkedResponseHead(
    int status_code, std::string_view content_type,
    const std::vector<std::string>& extra_headers, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(status_code) + " ";
  out += ReasonPhrase(status_code);
  out += kCrlf;
  out += "Content-Type: ";
  out += content_type;
  out += kCrlf;
  out += "Transfer-Encoding: chunked";
  out += kCrlf;
  if (!keep_alive) {
    out += "Connection: close";
    out += kCrlf;
  }
  for (const std::string& header : extra_headers) {
    out += header;
    out += kCrlf;
  }
  out += kCrlf;
  return out;
}

std::string EncodeChunk(std::string_view payload) {
  char size_hex[24];
  std::snprintf(size_hex, sizeof(size_hex), "%zx", payload.size());
  std::string out = size_hex;
  out += kCrlf;
  out += payload;
  out += kCrlf;
  return out;
}

}  // namespace dbsvec::server
