#ifndef DBSVEC_SERVER_STATS_H_
#define DBSVEC_SERVER_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace dbsvec::server {

/// Lock-free log-scale latency histogram: 40 buckets covering 1 µs .. ~9 h
/// at 2x resolution, relaxed atomic counters. Record is wait-free and safe
/// from any request thread; percentile reads are approximate under
/// concurrency (like every serving counter in this library) and exact when
/// traffic is quiescent.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(double micros);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Upper bound of the bucket holding the p-th percentile sample (p in
  /// [0, 100]), in microseconds; 0 when empty.
  double PercentileMicros(double p) const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
};

/// Cumulative serving counters of one Server, all relaxed atomics; rendered
/// as JSON by /v1/statz.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};  ///< accept failpoint/limit.
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> requests_assign{0};
  std::atomic<uint64_t> requests_stream{0};  ///< Streaming-assign requests.
  std::atomic<uint64_t> stream_frames{0};    ///< Frames across all streams.
  std::atomic<uint64_t> models_created{0};   ///< Registry create successes.
  std::atomic<uint64_t> models_deleted{0};   ///< Registry delete successes.
  std::atomic<uint64_t> requests_bad{0};       ///< 4xx responses.
  std::atomic<uint64_t> requests_shed{0};      ///< 503 admission rejections.
  std::atomic<uint64_t> num_deadline_hits{0};  ///< 504 responses.
  std::atomic<uint64_t> points_assigned{0};
  std::atomic<uint64_t> reloads_ok{0};
  std::atomic<uint64_t> reloads_failed{0};
  std::atomic<uint64_t> reload_attempts{0};  ///< Retry attempts, all reloads.
  std::atomic<uint64_t> cores_absorbed{0};   ///< Online-refresh insertions.
  std::atomic<uint64_t> refresh_failures{0};  ///< Failed absorb passes.
  std::atomic<uint64_t> checkpoints_ok{0};    ///< Durable-mode snapshots.
  std::atomic<uint64_t> checkpoints_failed{0};
  LatencyHistogram assign_latency;

  /// JSON object with every counter, assign p50/p99 (µs), the provided
  /// model identity fields (`model_sv_budget` / `model_sample_threshold`
  /// are the bounded-cost SVDD provenance recorded in the model file; 0 =
  /// exact training), and the execution config of the serving engine:
  /// `simd_backend` (active SIMD dispatch backend name) and `shard_count`
  /// (0 = unsharded). `cache_manager_json` (a pre-rendered JSON object,
  /// typically CacheManager::StatsJson) is spliced in as the
  /// `cache_manager` field when non-empty; `durability_json` (journal +
  /// recovery state of a durable server) and `failpoints_json` (per-site
  /// injected-fault hit counters) likewise as `durability` / `failpoints`;
  /// `models_json` (the per-model registry breakdown) as `models`.
  std::string ToJson(uint32_t model_version, uint32_t model_crc,
                     int model_sv_budget, int model_sample_threshold,
                     uint64_t engine_points_assigned,
                     uint64_t engine_sphere_rejections,
                     uint64_t engine_range_queries, int inflight,
                     int max_inflight, const char* simd_backend,
                     int shard_count,
                     const std::string& cache_manager_json = "",
                     const std::string& durability_json = "",
                     const std::string& failpoints_json = "",
                     const std::string& models_json = "") const;
};

}  // namespace dbsvec::server

#endif  // DBSVEC_SERVER_STATS_H_
