#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "cache/cache_manager.h"
#include "fault/failpoint.h"
#include "server/payload.h"
#include "simd/simd.h"

namespace dbsvec::server {
namespace {

constexpr int kMaxEpollEvents = 64;
constexpr size_t kReadChunk = 64 * 1024;

std::string JsonError(const std::string& message) {
  // Error strings are library-generated (paths, numbers, site names); the
  // only JSON-hostile bytes they can carry are quotes and backslashes.
  std::string escaped;
  escaped.reserve(message.size());
  for (const char c : message) {
    if (c == '"' || c == '\\') {
      escaped += '\\';
    }
    escaped += c == '\n' ? ' ' : c;
  }
  return "{\"error\":\"" + escaped + "\"}";
}

}  // namespace

struct Server::Connection {
  Connection(int fd, size_t max_body) : fd(fd), parser(max_body) {}

  const int fd;
  IoLoop* loop = nullptr;

  // Io-thread-only state (socket + parser are driven by the owning loop).
  HttpParser parser;
  bool protocol_error = false;  ///< Parser poisoned; stop dispatching.
  bool want_epollout = false;

  // Cross-thread state: workers append responses, the loop flushes them.
  std::mutex mutex;
  bool processing = false;
  std::string out;
  size_t out_offset = 0;
  int unflushed_responses = 0;
  bool close_after_write = false;
  bool closed = false;
};

struct Server::IoLoop {
  int epoll_fd = -1;
  int event_fd = -1;
  bool has_listener = false;
  std::thread thread;

  std::mutex mutex;  // Guards incoming + ready (the cross-thread mailbox).
  std::vector<int> incoming;
  std::vector<std::shared_ptr<Connection>> ready;

  // Io-thread-only connection table.
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
};

struct Server::RequestWork {
  std::shared_ptr<Connection> conn;
  HttpRequest request;
  Deadline deadline;
  std::chrono::steady_clock::time_point start;
  bool counted = false;  ///< Holds an inflight_ slot (assign/reload).
};

Server::Server(std::shared_ptr<AssignmentEngine> engine,
               const ServerOptions& options)
    : options_(options), handle_(std::move(engine)) {}

Status Server::Start(std::shared_ptr<AssignmentEngine> engine,
                     const ServerOptions& options,
                     std::unique_ptr<Server>* out) {
  if (engine == nullptr) {
    return Status::InvalidArgument("server: engine must not be null");
  }
  if (options.num_io_threads < 1 || options.num_workers < 1 ||
      options.max_inflight < 1) {
    return Status::InvalidArgument(
        "server: num_io_threads, num_workers, and max_inflight must be >= 1");
  }
  std::unique_ptr<Server> server(new Server(std::move(engine), options));
  DBSVEC_RETURN_IF_ERROR(server->Listen());
  DBSVEC_RETURN_IF_ERROR(server->SpawnThreads());
  *out = std::move(server);
  return Status::Ok();
}

Status Server::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("server: socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("server: bad bind address '" +
                                   options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Status::IoError(
        "server: bind " + options_.host + ":" +
        std::to_string(options_.port) + ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status status =
        Status::IoError(std::string("server: listen: ") +
                        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  return Status::Ok();
}

Status Server::SpawnThreads() {
  loops_.reserve(static_cast<size_t>(options_.num_io_threads));
  for (int i = 0; i < options_.num_io_threads; ++i) {
    auto loop = std::make_unique<IoLoop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->event_fd < 0) {
      return Status::IoError("server: epoll/eventfd setup failed");
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = loop->event_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->event_fd, &event);
    if (i == 0) {
      loop->has_listener = true;
      epoll_event listen_event{};
      listen_event.events = EPOLLIN;
      listen_event.data.fd = listen_fd_;
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &listen_event);
    }
    loops_.push_back(std::move(loop));
  }
  accepting_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    loop->thread = std::thread([this, raw = loop.get()] { IoLoopMain(raw); });
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  if (options_.durability.enabled &&
      ((options_.durability.fsync == FsyncPolicy::kInterval &&
        options_.durability.fsync_interval_ms > 0 &&
        options_.journal != nullptr) ||
       options_.durability.checkpoint_interval_ms > 0)) {
    durability_thread_ = std::thread([this] { DurabilityMain(); });
  }
  return Status::Ok();
}

void Server::WakeLoop(IoLoop* loop) {
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; other errors are
  // unrecoverable here and surface as a stalled loop in tests.
  [[maybe_unused]] const ssize_t n =
      ::write(loop->event_fd, &one, sizeof(one));
}

void Server::IoLoopMain(IoLoop* loop) {
  epoll_event events[kMaxEpollEvents];
  while (true) {
    const int n = ::epoll_wait(loop->epoll_fd, events, kMaxEpollEvents, 100);
    if (n < 0 && errno != EINTR) {
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop->event_fd) {
        uint64_t drained = 0;
        while (::read(loop->event_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (loop->has_listener && fd == listen_fd_) {
        AcceptReady(loop);
        continue;
      }
      const auto it = loop->conns.find(fd);
      if (it == loop->conns.end()) {
        continue;
      }
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(loop, conn);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        OnReadable(loop, conn);
      }
      if (events[i].events & EPOLLOUT) {
        FlushWrites(loop, conn);
      }
    }
    AdoptIncoming(loop);
    std::vector<std::shared_ptr<Connection>> ready;
    {
      std::lock_guard<std::mutex> lock(loop->mutex);
      ready.swap(loop->ready);
    }
    for (const auto& conn : ready) {
      FlushWrites(loop, conn);
      MaybeDispatch(loop, conn);
    }
    if (stopping_.load(std::memory_order_acquire)) {
      break;
    }
  }
  for (auto& [fd, conn] : loop->conns) {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (!conn->closed) {
      conn->closed = true;
      pending_responses_.fetch_sub(conn->unflushed_responses,
                                   std::memory_order_relaxed);
      conn->unflushed_responses = 0;
      ::close(fd);
    }
  }
  loop->conns.clear();
  if (loop->has_listener && listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
  ::close(loop->event_fd);
  ::close(loop->epoll_fd);
}

void Server::AcceptReady(IoLoop* loop) {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // EAGAIN or a transient accept error: wait for the next event.
    }
    if (!accepting_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    if (const Status status = FailpointCheck("server.accept"); !status.ok()) {
      stats_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    const size_t target =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    IoLoop* owner = loops_[target].get();
    if (owner == loop) {
      AdoptIncoming(loop);  // Flush any queued fds first to keep FIFO order.
      auto conn = std::make_shared<Connection>(fd, options_.max_body_bytes);
      conn->loop = loop;
      loop->conns.emplace(fd, conn);
      epoll_event event{};
      event.events = EPOLLIN;
      event.data.fd = fd;
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &event);
    } else {
      {
        std::lock_guard<std::mutex> lock(owner->mutex);
        owner->incoming.push_back(fd);
      }
      WakeLoop(owner);
    }
  }
}

void Server::AdoptIncoming(IoLoop* loop) {
  std::vector<int> incoming;
  {
    std::lock_guard<std::mutex> lock(loop->mutex);
    incoming.swap(loop->incoming);
  }
  for (const int fd : incoming) {
    auto conn = std::make_shared<Connection>(fd, options_.max_body_bytes);
    conn->loop = loop;
    loop->conns.emplace(fd, conn);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &event);
  }
}

void Server::CloseConnection(IoLoop* loop,
                             const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) {
      return;
    }
    conn->closed = true;
    pending_responses_.fetch_sub(conn->unflushed_responses,
                                 std::memory_order_relaxed);
    conn->unflushed_responses = 0;
  }
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  loop->conns.erase(conn->fd);
}

void Server::OnReadable(IoLoop* loop,
                        const std::shared_ptr<Connection>& conn) {
  char buffer[kReadChunk];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n == 0) {
      CloseConnection(loop, conn);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      CloseConnection(loop, conn);
      return;
    }
    if (conn->protocol_error) {
      continue;  // Drain and discard; the error response is on its way out.
    }
    if (const Status status =
            conn->parser.Feed(std::string_view(buffer, n));
        !status.ok()) {
      conn->protocol_error = true;
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
      const int code =
          status.code() == Status::Code::kResourceExhausted ? 413 : 400;
      RespondInline(loop, conn,
                    SerializeResponse(code, "application/json",
                                      JsonError(status.message()), {},
                                      /*keep_alive=*/false),
                    /*close_after=*/true);
      return;
    }
  }
  MaybeDispatch(loop, conn);
}

void Server::MaybeDispatch(IoLoop* loop,
                           const std::shared_ptr<Connection>& conn) {
  if (conn->protocol_error) {
    return;
  }
  HttpRequest request;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed || conn->processing) {
      return;
    }
    if (!conn->parser.Next(&request)) {
      return;
    }
    conn->processing = true;
  }
  stats_.requests_total.fetch_add(1, std::memory_order_relaxed);

  // Per-request deadline: X-Deadline-Ms header, else the server default.
  int64_t deadline_ms = options_.default_deadline_ms;
  if (const std::string_view header = request.Header("X-Deadline-Ms");
      !header.empty()) {
    const std::string header_str(header);
    char* end = nullptr;
    const long long parsed = std::strtoll(header_str.c_str(), &end, 10);
    if (end == header_str.c_str() || *end != '\0' || parsed <= 0) {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
      RespondInline(loop, conn,
                    SerializeResponse(
                        400, "application/json",
                        JsonError("bad X-Deadline-Ms '" + header_str + "'"),
                        {}, request.keep_alive),
                    !request.keep_alive);
      return;
    }
    deadline_ms = parsed;
  }

  RequestWork work;
  work.deadline =
      deadline_ms > 0 ? Deadline::AfterMillis(deadline_ms) : Deadline();
  work.start = std::chrono::steady_clock::now();

  // Admission control covers the expensive endpoints; health and stats
  // always pass so the server stays observable under overload.
  const bool gated =
      request.target == "/v1/assign" || request.target == "/v1/reload";
  if (gated) {
    const int current = inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (current >= options_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      stats_.requests_shed.fetch_add(1, std::memory_order_relaxed);
      RespondInline(
          loop, conn,
          SerializeResponse(503, "application/json",
                            JsonError("shed: " +
                                      std::to_string(options_.max_inflight) +
                                      " requests already in flight"),
                            {"Retry-After: 1"}, request.keep_alive),
          !request.keep_alive);
      return;
    }
    work.counted = true;
  }

  work.conn = conn;
  work.request = std::move(request);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(work));
  }
  queue_cv_.notify_one();
}

void Server::EnqueueResponse(const std::shared_ptr<Connection>& conn,
                             std::string response, bool close_after) {
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->processing = false;
    if (conn->closed) {
      dropped = true;
    } else {
      conn->out += response;
      conn->close_after_write |= close_after;
      ++conn->unflushed_responses;
      pending_responses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (dropped) {
    return;
  }
  IoLoop* loop = conn->loop;
  {
    std::lock_guard<std::mutex> lock(loop->mutex);
    loop->ready.push_back(conn);
  }
  WakeLoop(loop);
}

void Server::RespondInline(IoLoop* loop,
                           const std::shared_ptr<Connection>& conn,
                           std::string response, bool close_after) {
  EnqueueResponse(conn, std::move(response), close_after);
  FlushWrites(loop, conn);
}

void Server::FlushWrites(IoLoop* loop,
                         const std::shared_ptr<Connection>& conn) {
  bool close_now = false;
  bool want_out = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) {
      return;
    }
    while (conn->out_offset < conn->out.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->out.data() + conn->out_offset,
                 conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_offset += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        want_out = true;
        break;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      close_now = true;  // Peer vanished mid-response.
      break;
    }
    if (conn->out_offset == conn->out.size()) {
      conn->out.clear();
      conn->out_offset = 0;
      pending_responses_.fetch_sub(conn->unflushed_responses,
                                   std::memory_order_relaxed);
      conn->unflushed_responses = 0;
      close_now |= conn->close_after_write;
    }
  }
  if (close_now) {
    CloseConnection(loop, conn);
    return;
  }
  if (want_out != conn->want_epollout) {
    conn->want_epollout = want_out;
    epoll_event event{};
    event.events = want_out ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
    event.data.fd = conn->fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &event);
  }
}

void Server::WorkerMain() {
  while (true) {
    RequestWork work;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) {
          return;
        }
        continue;
      }
      work = std::move(queue_.front());
      queue_.pop_front();
    }
    std::string response = ProcessRequest(work.request, work.deadline);
    if (work.request.target == "/v1/assign") {
      const auto elapsed = std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - work.start);
      stats_.assign_latency.Record(elapsed.count());
    }
    EnqueueResponse(work.conn, std::move(response),
                    !work.request.keep_alive);
    if (work.counted) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

std::string Server::ProcessRequest(const HttpRequest& request,
                                   const Deadline& deadline) {
  if (request.target == "/v1/healthz") {
    if (request.method != "GET") {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
      return SerializeResponse(405, "text/plain", "method not allowed\n", {},
                               request.keep_alive);
    }
    // Still 200 while durability is degraded: the server keeps answering
    // queries correctly, it just cannot promise the overlay survives a
    // crash. Probes that care grep the body.
    std::string body = "ok\n";
    if (options_.journal != nullptr && options_.journal->degraded()) {
      body += "durability: degraded\n";
    }
    return SerializeResponse(200, "text/plain", std::move(body), {},
                             request.keep_alive);
  }
  if (request.target == "/v1/statz") {
    if (request.method != "GET") {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
      return SerializeResponse(405, "text/plain", "method not allowed\n", {},
                               request.keep_alive);
    }
    return SerializeResponse(200, "application/json", HandleStatz(), {},
                             request.keep_alive);
  }
  if (request.target == "/v1/assign") {
    if (request.method != "POST") {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
      return SerializeResponse(405, "text/plain", "method not allowed\n", {},
                               request.keep_alive);
    }
    return HandleAssign(request, deadline);
  }
  if (request.target == "/v1/reload") {
    if (request.method != "POST") {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
      return SerializeResponse(405, "text/plain", "method not allowed\n", {},
                               request.keep_alive);
    }
    return HandleReload(request, deadline);
  }
  if (request.target == "/v1/snapshot") {
    if (request.method != "POST") {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
      return SerializeResponse(405, "text/plain", "method not allowed\n", {},
                               request.keep_alive);
    }
    return HandleSnapshot(request);
  }
  stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
  return SerializeResponse(404, "application/json",
                           JsonError("no handler for " + request.target), {},
                           request.keep_alive);
}

std::string Server::HandleAssign(const HttpRequest& request,
                                 const Deadline& deadline) {
  PayloadEncoding encoding = PayloadEncoding::kJson;
  Status status =
      EncodingFromContentType(request.Header("Content-Type"), &encoding);
  Dataset points(1);
  if (status.ok()) {
    status = ParseAssignBody(request.body, encoding,
                             options_.max_points_per_request, &points);
  }
  std::shared_ptr<AssignmentEngine> engine = handle_.Get();
  if (status.ok() && points.dim() != engine->dim()) {
    status = Status::InvalidArgument(
        "assign: request has dimension " + std::to_string(points.dim()) +
        ", model expects " + std::to_string(engine->dim()));
  }
  std::vector<int32_t> labels;
  if (status.ok()) {
    status = engine->AssignBatch(points, &labels, deadline);
  }
  if (!status.ok()) {
    const int code = HttpStatusFromStatus(status);
    if (code == 504) {
      // Deadline expiry is an expected production outcome: count it and
      // hand back the partial serving stats alongside the error.
      const uint64_t hits =
          stats_.num_deadline_hits.fetch_add(1, std::memory_order_relaxed) +
          1;
      return SerializeResponse(
          504, "application/json",
          "{\"error\":\"deadline exceeded\",\"num_deadline_hits\":" +
              std::to_string(hits) + ",\"points_received\":" +
              std::to_string(points.size()) + "}",
          {}, request.keep_alive);
    }
    if (code >= 400 && code < 500) {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
    }
    return SerializeResponse(code, "application/json",
                             JsonError(status.ToString()), {},
                             request.keep_alive);
  }
  stats_.requests_assign.fetch_add(1, std::memory_order_relaxed);
  stats_.points_assigned.fetch_add(static_cast<uint64_t>(points.size()),
                                   std::memory_order_relaxed);
  if (options_.online_refresh || options_.durability.enabled) {
    uint64_t absorbed = 0;
    const Status refresh =
        engine->AbsorbCoreAdjacent(points, labels, &absorbed);
    if (refresh.ok()) {
      stats_.cores_absorbed.fetch_add(absorbed, std::memory_order_relaxed);
    } else {
      // Refresh is best-effort: the labels are already correct for the
      // pinned snapshot, so a failed absorb pass degrades to no-op.
      stats_.refresh_failures.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return SerializeResponse(200, ContentTypeName(encoding),
                           EncodeAssignResponse(labels, encoding), {},
                           request.keep_alive);
}

std::string Server::HandleStatz() {
  std::shared_ptr<AssignmentEngine> engine = handle_.Get();
  const AssignmentEngine::ServeStats engine_stats = engine->stats();

  // Per-site injected-fault hit counters (satellite observability of the
  // fault framework): always rendered, all zeros when nothing is armed.
  std::string failpoints = "{";
  bool first_site = true;
  for (const std::string_view site : FailpointRegistry::Sites()) {
    if (!first_site) {
      failpoints += ",";
    }
    first_site = false;
    failpoints += "\"";
    failpoints += site;
    failpoints += "\":" +
                  std::to_string(FailpointRegistry::Instance().HitCount(site));
  }
  failpoints += "}";

  std::string durability;
  if (options_.durability.enabled && options_.journal != nullptr) {
    const OverlayJournalStats js = options_.journal->stats();
    const auto field = [&durability](const char* name, uint64_t value) {
      durability += "\"";
      durability += name;
      durability += "\":" + std::to_string(value) + ",";
    };
    durability = "{";
    durability += "\"fsync\":\"";
    durability += FsyncPolicyName(options_.journal->policy());
    durability += "\",";
    field("journal_records", js.records);
    field("journal_bytes", js.bytes);
    field("appends_ok", js.appends_ok);
    field("records_dropped", js.records_dropped);
    field("fsyncs", js.fsyncs);
    field("fsync_failures", js.fsync_failures);
    field("journal_resets", js.resets);
    field("records_replayed", options_.recovery.records_replayed);
    field("torn_bytes_truncated", options_.recovery.torn_bytes_truncated);
    field("journals_discarded", options_.recovery.journals_discarded);
    field("recovery_load_attempts",
          static_cast<uint64_t>(options_.recovery.load_attempts));
    durability += std::string("\"loaded_from_snapshot\":") +
                  (options_.recovery.loaded_from_snapshot ? "true" : "false") +
                  ",";
    durability += std::string("\"degraded\":") +
                  (options_.journal->degraded() ? "true" : "false");
    durability += "}";
  }

  return stats_.ToJson(engine->model_version(), engine->model_crc(),
                       engine->model().sv_budget,
                       engine->model().sample_threshold,
                       engine_stats.points_assigned,
                       engine_stats.sphere_rejections,
                       engine_stats.range_queries,
                       inflight_.load(std::memory_order_relaxed),
                       options_.max_inflight,
                       simd::BackendName(simd::ActiveBackend()),
                       engine->shard_count(),
                       cache::CacheManager::Global().StatsJson(), durability,
                       failpoints);
}

std::string Server::HandleReload(const HttpRequest& request,
                                 const Deadline& deadline) {
  // Body: either a plain-text path or {"path": "..."} (no escapes).
  std::string path;
  std::string_view body = request.body;
  while (!body.empty() && (body.front() == ' ' || body.front() == '\n' ||
                           body.front() == '\r' || body.front() == '\t')) {
    body.remove_prefix(1);
  }
  while (!body.empty() && (body.back() == ' ' || body.back() == '\n' ||
                           body.back() == '\r' || body.back() == '\t')) {
    body.remove_suffix(1);
  }
  if (!body.empty() && body.front() == '{') {
    const size_t key = body.find("\"path\"");
    const size_t colon =
        key == std::string_view::npos ? key : body.find(':', key);
    const size_t open =
        colon == std::string_view::npos ? colon : body.find('"', colon);
    const size_t close =
        open == std::string_view::npos ? open : body.find('"', open + 1);
    if (close == std::string_view::npos) {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
      return SerializeResponse(
          400, "application/json",
          JsonError("reload body must be a path or {\"path\": \"...\"}"), {},
          request.keep_alive);
    }
    path = std::string(body.substr(open + 1, close - open - 1));
  } else {
    path = std::string(body);
  }
  if (path.empty()) {
    stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
    return SerializeResponse(400, "application/json",
                             JsonError("reload: empty model path"), {},
                             request.keep_alive);
  }

  RetryReport report;
  const Status status = Reload(path, deadline, &report);
  if (!status.ok()) {
    const int code = HttpStatusFromStatus(status);
    if (code >= 400 && code < 500) {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
    }
    return SerializeResponse(
        code, "application/json",
        "{\"error\":\"" + status.ToString() + "\",\"attempts\":" +
            std::to_string(report.attempts) + "}",
        {}, request.keep_alive);
  }
  std::shared_ptr<AssignmentEngine> engine = handle_.Get();
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", engine->model_crc());
  return SerializeResponse(
      200, "application/json",
      "{\"reloaded\":true,\"model_version\":" +
          std::to_string(engine->model_version()) + ",\"model_crc\":\"" +
          crc_hex + "\",\"attempts\":" + std::to_string(report.attempts) +
          "}",
      {}, request.keep_alive);
}

std::string Server::HandleSnapshot(const HttpRequest& request) {
  uint32_t crc = 0;
  uint64_t folded = 0;
  const Status status = Snapshot(&crc, &folded);
  if (!status.ok()) {
    const int code = HttpStatusFromStatus(status);
    if (code >= 400 && code < 500) {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
    }
    return SerializeResponse(code, "application/json",
                             JsonError(status.ToString()), {},
                             request.keep_alive);
  }
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", crc);
  return SerializeResponse(
      200, "application/json",
      "{\"snapshot\":true,\"path\":\"" + options_.durability.snapshot_path +
          "\",\"model_crc\":\"" + crc_hex +
          "\",\"folded_records\":" + std::to_string(folded) + "}",
      {}, request.keep_alive);
}

Status Server::Snapshot(uint32_t* snapshot_crc, uint64_t* folded_records) {
  if (!options_.durability.enabled) {
    return Status::FailedPrecondition(
        "snapshot: server is not durable (start with --durable)");
  }
  // reload_mutex_ keeps the checkpoint from racing a journal rebind in the
  // durable reload path (the engine's own absorb_mutex_ handles everything
  // else).
  std::lock_guard<std::mutex> serialize(reload_mutex_);
  const Status status = handle_.Get()->Checkpoint(
      options_.durability.snapshot_path, snapshot_crc, folded_records);
  if (status.ok()) {
    stats_.checkpoints_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.checkpoints_failed.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

void Server::DurabilityMain() {
  using Clock = std::chrono::steady_clock;
  const bool interval_fsync =
      options_.journal != nullptr &&
      options_.durability.fsync == FsyncPolicy::kInterval &&
      options_.durability.fsync_interval_ms > 0;
  const bool auto_checkpoint = options_.durability.checkpoint_interval_ms > 0;
  const auto fsync_period =
      std::chrono::milliseconds(options_.durability.fsync_interval_ms);
  const auto checkpoint_period =
      std::chrono::milliseconds(options_.durability.checkpoint_interval_ms);
  Clock::time_point next_fsync = Clock::now() + fsync_period;
  Clock::time_point next_checkpoint = Clock::now() + checkpoint_period;

  std::unique_lock<std::mutex> lock(durability_mutex_);
  while (!stopping_.load(std::memory_order_acquire)) {
    Clock::time_point wake = Clock::now() + std::chrono::seconds(1);
    if (interval_fsync) {
      wake = std::min(wake, next_fsync);
    }
    if (auto_checkpoint) {
      wake = std::min(wake, next_checkpoint);
    }
    durability_cv_.wait_until(lock, wake, [this] {
      return stopping_.load(std::memory_order_acquire);
    });
    if (stopping_.load(std::memory_order_acquire)) {
      break;
    }
    lock.unlock();
    if (interval_fsync && Clock::now() >= next_fsync) {
      // Failures are counted by the journal and surface as degraded
      // durability; the timer keeps ticking (the disk may come back).
      (void)options_.journal->Sync();
      next_fsync = Clock::now() + fsync_period;
    }
    if (auto_checkpoint && Clock::now() >= next_checkpoint) {
      (void)Snapshot();
      next_checkpoint = Clock::now() + checkpoint_period;
    }
    lock.lock();
  }
}

Status Server::Reload(const std::string& path, const Deadline& deadline,
                      RetryReport* report) {
  std::lock_guard<std::mutex> serialize_reloads(reload_mutex_);
  RetryReport local;
  RetryReport& out = report != nullptr ? *report : local;
  const RetryPolicy policy(options_.reload_retry);
  const Status status = policy.Run(
      "reload " + path, deadline,
      [&]() -> Status {
        DBSVEC_RETURN_IF_ERROR(FailpointCheck("server.reload"));
        if (options_.journal == nullptr) {
          return handle_.LoadAndSwap(path, options_.engine_options, deadline);
        }
        // Durable swap: build the replacement fully off to the side, then
        // move the journal over to the new model identity before it starts
        // serving. A reloaded model starts with an empty overlay, so the
        // journal restarts empty too, bound to the new payload CRC.
        AssignmentOptions build_options = options_.engine_options;
        build_options.online_refresh = true;
        build_options.build_deadline = deadline;
        std::unique_ptr<AssignmentEngine> next;
        DBSVEC_RETURN_IF_ERROR(
            AssignmentEngine::Load(path, build_options, &next));
        std::shared_ptr<AssignmentEngine> old = handle_.Get();
        old->AttachJournal(nullptr);
        if (Status reset = options_.journal->Reset(next->model_crc());
            !reset.ok()) {
          // The old engine keeps serving — keep journaling it.
          old->AttachJournal(options_.journal);
          return reset;
        }
        next->AttachJournal(options_.journal);
        handle_.Swap(std::move(next));
        return Status::Ok();
      },
      &out);
  stats_.reload_attempts.fetch_add(static_cast<uint64_t>(out.attempts),
                                   std::memory_order_relaxed);
  if (status.ok()) {
    stats_.reloads_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.reloads_failed.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

void Server::Shutdown(const Deadline& drain) {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shutdown_done_) {
      return;
    }
    shutdown_done_ = true;
  }
  // Phase 1: stop taking new work; connections already accepted keep
  // being served.
  accepting_.store(false, std::memory_order_release);
  // Phase 2: drain — every dispatched request answers and every response
  // reaches the socket (or its connection dies), bounded by `drain`.
  while (!drain.Expired() &&
         (inflight_.load(std::memory_order_acquire) > 0 ||
          pending_responses_.load(std::memory_order_relaxed) > 0)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Phase 3: tear down loops, workers, and the durability timer.
  stopping_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  durability_cv_.notify_all();
  for (auto& loop : loops_) {
    WakeLoop(loop.get());
  }
  for (std::thread& worker : workers_) {
    worker.join();
  }
  for (auto& loop : loops_) {
    loop->thread.join();
  }
  if (durability_thread_.joinable()) {
    durability_thread_.join();
  }
  workers_.clear();
  loops_.clear();
  // Make everything absorbed up to the graceful stop durable, whatever the
  // fsync policy (failures already marked the journal degraded).
  if (options_.journal != nullptr) {
    (void)options_.journal->Sync();
  }
}

Server::~Server() { Shutdown(); }

}  // namespace dbsvec::server
