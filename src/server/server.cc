#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "cache/cache_manager.h"
#include "fault/failpoint.h"
#include "registry/model_name.h"
#include "server/payload.h"
#include "simd/simd.h"

namespace dbsvec::server {
namespace {

constexpr int kMaxEpollEvents = 64;
constexpr size_t kReadChunk = 64 * 1024;

std::string JsonError(const std::string& message) {
  // Error strings are library-generated (paths, numbers, site names); the
  // only JSON-hostile bytes they can carry are quotes and backslashes.
  std::string escaped;
  escaped.reserve(message.size());
  for (const char c : message) {
    if (c == '"' || c == '\\') {
      escaped += '\\';
    }
    escaped += c == '\n' ? ' ' : c;
  }
  return "{\"error\":\"" + escaped + "\"}";
}

/// Where a request target routes. Legacy unnamed routes alias the model
/// "default"; named routes are /v1/models[/<name>[/<action>]]. A name that
/// fails validation becomes kBadName with the validator's message — the
/// name is rejected before it can touch the filesystem or the map.
struct Route {
  enum class Kind {
    kHealthz,
    kStatz,
    kModels,
    kModel,
    kAssign,
    kReload,
    kSnapshot,
    kRefresh,
    kBadName,
    kUnknown,
  };
  Kind kind = Kind::kUnknown;
  std::string model;
  std::string error;  // kBadName only.
};

Route ParseRoute(const std::string& target) {
  Route route;
  if (target == "/v1/healthz") {
    route.kind = Route::Kind::kHealthz;
    return route;
  }
  if (target == "/v1/statz") {
    route.kind = Route::Kind::kStatz;
    return route;
  }
  if (target == "/v1/assign" || target == "/v1/reload" ||
      target == "/v1/snapshot" || target == "/v1/refresh") {
    route.kind = target == "/v1/assign"     ? Route::Kind::kAssign
                 : target == "/v1/reload"   ? Route::Kind::kReload
                 : target == "/v1/snapshot" ? Route::Kind::kSnapshot
                                            : Route::Kind::kRefresh;
    route.model = "default";
    return route;
  }
  if (target == "/v1/models") {
    route.kind = Route::Kind::kModels;
    return route;
  }
  constexpr std::string_view kPrefix = "/v1/models/";
  if (target.size() > kPrefix.size() &&
      std::string_view(target).substr(0, kPrefix.size()) == kPrefix) {
    std::string_view rest = std::string_view(target).substr(kPrefix.size());
    std::string_view name = rest;
    std::string_view action;
    if (const size_t slash = rest.find('/'); slash != std::string_view::npos) {
      name = rest.substr(0, slash);
      action = rest.substr(slash + 1);
    }
    if (const Status valid = registry::ValidateModelName(name); !valid.ok()) {
      route.kind = Route::Kind::kBadName;
      route.error = valid.message();
      return route;
    }
    route.model = std::string(name);
    if (action.empty()) {
      route.kind = Route::Kind::kModel;
    } else if (action == "assign") {
      route.kind = Route::Kind::kAssign;
    } else if (action == "reload") {
      route.kind = Route::Kind::kReload;
    } else if (action == "snapshot") {
      route.kind = Route::Kind::kSnapshot;
    } else if (action == "refresh") {
      route.kind = Route::Kind::kRefresh;
    } else {
      route.kind = Route::Kind::kUnknown;
    }
    return route;
  }
  return route;
}

/// Extracts a model path from a request body: either a plain-text path or
/// {"path": "..."} (no escapes) — the grammar /v1/reload has always spoken.
Status ExtractPathBody(std::string_view body, std::string* path) {
  while (!body.empty() && (body.front() == ' ' || body.front() == '\n' ||
                           body.front() == '\r' || body.front() == '\t')) {
    body.remove_prefix(1);
  }
  while (!body.empty() && (body.back() == ' ' || body.back() == '\n' ||
                           body.back() == '\r' || body.back() == '\t')) {
    body.remove_suffix(1);
  }
  if (!body.empty() && body.front() == '{') {
    const size_t key = body.find("\"path\"");
    const size_t colon =
        key == std::string_view::npos ? key : body.find(':', key);
    const size_t open =
        colon == std::string_view::npos ? colon : body.find('"', colon);
    const size_t close =
        open == std::string_view::npos ? open : body.find('"', open + 1);
    if (close == std::string_view::npos) {
      return Status::InvalidArgument(
          "body must be a path or {\"path\": \"...\"}");
    }
    *path = std::string(body.substr(open + 1, close - open - 1));
  } else {
    *path = std::string(body);
  }
  if (path->empty()) {
    return Status::InvalidArgument("empty model path");
  }
  return Status::Ok();
}

/// The parser-level predicate that flips a request into streaming mode.
bool IsStreamRequest(const HttpRequest& request) {
  return request.method == "POST" &&
         AsciiCaseEqual(request.Header("Content-Type"), kStreamContentType);
}

std::string MethodNotAllowed(const HttpRequest& request) {
  return SerializeResponse(405, "text/plain", "method not allowed\n", {},
                           request.keep_alive);
}

}  // namespace

/// One streaming-assign session: the model entry + engine pinned at stream
/// start (every frame of a stream is answered by the same engine snapshot,
/// whatever reloads or deletes happen mid-stream), the frame cursor, and
/// the admission slots the stream holds for its whole life. Io thread and
/// worker hand the session back and forth through Connection::processing
/// (guarded by Connection::mutex), so the non-atomic fields never see
/// concurrent access.
struct Server::StreamSession {
  std::shared_ptr<registry::ModelEntry> entry;
  std::shared_ptr<AssignmentEngine> engine;
  Deadline deadline;
  bool keep_alive = true;
  bool counted = false;   ///< Holds a server-wide inflight_ slot.
  bool released = false;  ///< Slots given back (finish, error, or close).
  bool head_sent = false;  ///< Chunked response head already queued.
  // Frame cursor: 4-byte little-endian length prefix, then the payload.
  bool have_len = false;
  uint32_t frame_len = 0;
  std::string lenbuf;
  std::string frame;
  uint64_t frames = 0;
};

struct Server::Connection {
  Connection(int fd, size_t max_body) : fd(fd), parser(max_body) {
    parser.SetStreamPredicate(IsStreamRequest);
  }

  const int fd;
  IoLoop* loop = nullptr;

  // Io-thread-only state (socket + parser are driven by the owning loop).
  HttpParser parser;
  bool protocol_error = false;  ///< Parser poisoned; stop dispatching.
  bool want_epollout = false;
  bool read_paused = false;  ///< EPOLLIN off while a frame is in flight.

  // Cross-thread state: workers append responses, the loop flushes them.
  std::mutex mutex;
  bool processing = false;
  std::shared_ptr<StreamSession> stream;  ///< Active streaming session.
  std::string out;
  size_t out_offset = 0;
  int unflushed_responses = 0;
  bool close_after_write = false;
  bool closed = false;
};

struct Server::IoLoop {
  int epoll_fd = -1;
  int event_fd = -1;
  bool has_listener = false;
  std::thread thread;

  std::mutex mutex;  // Guards incoming + ready (the cross-thread mailbox).
  std::vector<int> incoming;
  std::vector<std::shared_ptr<Connection>> ready;

  // Io-thread-only connection table.
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
};

struct Server::RequestWork {
  std::shared_ptr<Connection> conn;
  HttpRequest request;
  Route route;
  Deadline deadline;
  std::chrono::steady_clock::time_point start;
  bool counted = false;  ///< Holds an inflight_ slot (gated endpoints).
  // Streaming: one decoded frame for the session (request/route unused).
  std::shared_ptr<StreamSession> stream;
  std::string frame;
};

Server::Server(const ServerOptions& options) : options_(options) {
  registry::RegistryOptions registry_options;
  registry_options.data_dir = options_.data_dir;
  registry_options.engine_options = options_.engine_options;
  registry_options.retry = options_.reload_retry;
  registry_options.durable = options_.durability.enabled;
  registry_options.fsync = options_.durability.fsync;
  registry_options.fsync_interval_ms = options_.durability.fsync_interval_ms;
  registry_options.checkpoint_interval_ms =
      options_.durability.checkpoint_interval_ms;
  registry_options.max_models = options_.max_models;
  registry_options.model_max_inflight = options_.model_max_inflight;
  registry_ =
      std::make_unique<registry::ModelRegistry>(std::move(registry_options));
}

Status Server::Start(std::shared_ptr<AssignmentEngine> engine,
                     const ServerOptions& options,
                     std::unique_ptr<Server>* out) {
  if (engine == nullptr && options.data_dir.empty()) {
    return Status::InvalidArgument(
        "server: engine must not be null (set data_dir to start a "
        "registry-only server)");
  }
  if (options.num_io_threads < 1 || options.num_workers < 1 ||
      options.max_inflight < 1) {
    return Status::InvalidArgument(
        "server: num_io_threads, num_workers, and max_inflight must be >= 1");
  }
  if (options.max_models < 1) {
    return Status::InvalidArgument("server: max_models must be >= 1");
  }
  std::unique_ptr<Server> server(new Server(options));
  if (engine != nullptr) {
    DBSVEC_RETURN_IF_ERROR(server->registry_->Adopt(
        "default", std::move(engine), options.journal, options.durability,
        options.recovery, /*base_model_path=*/""));
  }
  if (!options.data_dir.empty()) {
    DBSVEC_RETURN_IF_ERROR(
        server->registry_->RecoverAll(&server->registry_recovery_));
  }
  DBSVEC_RETURN_IF_ERROR(server->Listen());
  DBSVEC_RETURN_IF_ERROR(server->SpawnThreads());
  *out = std::move(server);
  return Status::Ok();
}

std::shared_ptr<AssignmentEngine> Server::engine() const {
  const std::shared_ptr<registry::ModelEntry> entry =
      registry_->Find("default");
  return entry == nullptr ? nullptr : entry->engine();
}

Status Server::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("server: socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("server: bad bind address '" +
                                   options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Status::IoError(
        "server: bind " + options_.host + ":" +
        std::to_string(options_.port) + ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status status =
        Status::IoError(std::string("server: listen: ") +
                        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  return Status::Ok();
}

Status Server::SpawnThreads() {
  loops_.reserve(static_cast<size_t>(options_.num_io_threads));
  for (int i = 0; i < options_.num_io_threads; ++i) {
    auto loop = std::make_unique<IoLoop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->event_fd < 0) {
      return Status::IoError("server: epoll/eventfd setup failed");
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = loop->event_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->event_fd, &event);
    if (i == 0) {
      loop->has_listener = true;
      epoll_event listen_event{};
      listen_event.events = EPOLLIN;
      listen_event.data.fd = listen_fd_;
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &listen_event);
    }
    loops_.push_back(std::move(loop));
  }
  accepting_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    loop->thread = std::thread([this, raw = loop.get()] { IoLoopMain(raw); });
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  if (options_.durability.enabled &&
      ((options_.durability.fsync == FsyncPolicy::kInterval &&
        options_.durability.fsync_interval_ms > 0) ||
       options_.durability.checkpoint_interval_ms > 0)) {
    durability_thread_ = std::thread([this] { DurabilityMain(); });
  }
  return Status::Ok();
}

void Server::WakeLoop(IoLoop* loop) {
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; other errors are
  // unrecoverable here and surface as a stalled loop in tests.
  [[maybe_unused]] const ssize_t n =
      ::write(loop->event_fd, &one, sizeof(one));
}

void Server::IoLoopMain(IoLoop* loop) {
  epoll_event events[kMaxEpollEvents];
  while (true) {
    const int n = ::epoll_wait(loop->epoll_fd, events, kMaxEpollEvents, 100);
    if (n < 0 && errno != EINTR) {
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop->event_fd) {
        uint64_t drained = 0;
        while (::read(loop->event_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (loop->has_listener && fd == listen_fd_) {
        AcceptReady(loop);
        continue;
      }
      const auto it = loop->conns.find(fd);
      if (it == loop->conns.end()) {
        continue;
      }
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(loop, conn);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        OnReadable(loop, conn);
      }
      if (events[i].events & EPOLLOUT) {
        FlushWrites(loop, conn);
      }
    }
    AdoptIncoming(loop);
    std::vector<std::shared_ptr<Connection>> ready;
    {
      std::lock_guard<std::mutex> lock(loop->mutex);
      ready.swap(loop->ready);
    }
    for (const auto& conn : ready) {
      FlushWrites(loop, conn);
      if (conn->closed) {
        continue;
      }
      if (conn->stream != nullptr) {
        // A frame answer just landed: resume cutting frames.
        PumpStream(loop, conn);
      }
      if (!conn->closed) {
        MaybeDispatch(loop, conn);
      }
    }
    if (stopping_.load(std::memory_order_acquire)) {
      break;
    }
  }
  for (auto& [fd, conn] : loop->conns) {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (!conn->closed) {
      conn->closed = true;
      pending_responses_.fetch_sub(conn->unflushed_responses,
                                   std::memory_order_relaxed);
      conn->unflushed_responses = 0;
      if (conn->stream != nullptr && !conn->stream->released) {
        conn->stream->released = true;
        if (conn->stream->counted) {
          inflight_.fetch_sub(1, std::memory_order_acq_rel);
        }
        if (conn->stream->entry != nullptr) {
          conn->stream->entry->inflight.fetch_sub(1,
                                                  std::memory_order_acq_rel);
        }
      }
      ::close(fd);
    }
  }
  loop->conns.clear();
  if (loop->has_listener && listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
  ::close(loop->event_fd);
  ::close(loop->epoll_fd);
}

void Server::AcceptReady(IoLoop* loop) {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // EAGAIN or a transient accept error: wait for the next event.
    }
    if (!accepting_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    if (const Status status = FailpointCheck("server.accept"); !status.ok()) {
      stats_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    const size_t target =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    IoLoop* owner = loops_[target].get();
    if (owner == loop) {
      AdoptIncoming(loop);  // Flush any queued fds first to keep FIFO order.
      auto conn = std::make_shared<Connection>(fd, options_.max_body_bytes);
      conn->loop = loop;
      loop->conns.emplace(fd, conn);
      epoll_event event{};
      event.events = EPOLLIN;
      event.data.fd = fd;
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &event);
    } else {
      {
        std::lock_guard<std::mutex> lock(owner->mutex);
        owner->incoming.push_back(fd);
      }
      WakeLoop(owner);
    }
  }
}

void Server::AdoptIncoming(IoLoop* loop) {
  std::vector<int> incoming;
  {
    std::lock_guard<std::mutex> lock(loop->mutex);
    incoming.swap(loop->incoming);
  }
  for (const int fd : incoming) {
    auto conn = std::make_shared<Connection>(fd, options_.max_body_bytes);
    conn->loop = loop;
    loop->conns.emplace(fd, conn);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &event);
  }
}

void Server::CloseConnection(IoLoop* loop,
                             const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) {
      return;
    }
    conn->closed = true;
    pending_responses_.fetch_sub(conn->unflushed_responses,
                                 std::memory_order_relaxed);
    conn->unflushed_responses = 0;
    if (conn->stream != nullptr && !conn->stream->released) {
      // An aborted stream gives back its admission slots exactly once.
      conn->stream->released = true;
      if (conn->stream->counted) {
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
      }
      if (conn->stream->entry != nullptr) {
        conn->stream->entry->inflight.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
    conn->stream.reset();
  }
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  loop->conns.erase(conn->fd);
}

void Server::SetReadPaused(IoLoop* loop,
                           const std::shared_ptr<Connection>& conn,
                           bool paused) {
  if (conn->read_paused == paused) {
    return;
  }
  conn->read_paused = paused;
  epoll_event event{};
  event.events = (paused ? 0u : static_cast<uint32_t>(EPOLLIN)) |
                 (conn->want_epollout ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  event.data.fd = conn->fd;
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &event);
}

void Server::OnReadable(IoLoop* loop,
                        const std::shared_ptr<Connection>& conn) {
  char buffer[kReadChunk];
  while (!conn->read_paused) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n == 0) {
      CloseConnection(loop, conn);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      CloseConnection(loop, conn);
      return;
    }
    if (conn->protocol_error) {
      continue;  // Drain and discard; the error response is on its way out.
    }
    if (const Status status =
            conn->parser.Feed(std::string_view(buffer, n));
        !status.ok()) {
      conn->protocol_error = true;
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
      const int code =
          status.code() == Status::Code::kResourceExhausted ? 413 : 400;
      RespondInline(loop, conn,
                    SerializeResponse(code, "application/json",
                                      JsonError(status.message()), {},
                                      /*keep_alive=*/false),
                    /*close_after=*/true);
      return;
    }
    // Dispatch as soon as a head is ready and pump streams per read chunk:
    // a streaming body must start draining (and pausing reads) instead of
    // accumulating in the parser buffer, or the memory bound is lost.
    if (conn->parser.HasReady()) {
      MaybeDispatch(loop, conn);
    }
    if (conn->stream != nullptr) {
      PumpStream(loop, conn);
    }
    if (conn->closed) {
      return;
    }
  }
  if (conn->closed || conn->protocol_error) {
    return;
  }
  MaybeDispatch(loop, conn);
  if (conn->stream != nullptr) {
    PumpStream(loop, conn);
  }
}

void Server::MaybeDispatch(IoLoop* loop,
                           const std::shared_ptr<Connection>& conn) {
  if (conn->protocol_error) {
    return;
  }
  HttpRequest request;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed || conn->processing || conn->stream != nullptr) {
      return;
    }
    if (!conn->parser.Next(&request)) {
      return;
    }
    conn->processing = true;
  }
  stats_.requests_total.fetch_add(1, std::memory_order_relaxed);

  // Per-request deadline: X-Deadline-Ms header, else the server default.
  int64_t deadline_ms = options_.default_deadline_ms;
  if (const std::string_view header = request.Header("X-Deadline-Ms");
      !header.empty()) {
    const std::string header_str(header);
    char* end = nullptr;
    const long long parsed = std::strtoll(header_str.c_str(), &end, 10);
    if (end == header_str.c_str() || *end != '\0' || parsed <= 0) {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
      if (request.is_stream) {
        conn->protocol_error = true;  // Unread body bytes are inbound.
      }
      RespondInline(loop, conn,
                    SerializeResponse(
                        400, "application/json",
                        JsonError("bad X-Deadline-Ms '" + header_str + "'"),
                        {}, request.keep_alive && !request.is_stream),
                    !request.keep_alive || request.is_stream);
      return;
    }
    deadline_ms = parsed;
  }
  const Deadline deadline =
      deadline_ms > 0 ? Deadline::AfterMillis(deadline_ms) : Deadline();

  if (request.is_stream) {
    BeginStream(loop, conn, std::move(request), deadline);
    return;
  }

  RequestWork work;
  work.deadline = deadline;
  work.start = std::chrono::steady_clock::now();
  work.route = ParseRoute(request.target);

  // Admission control covers the expensive endpoints; health and stats
  // always pass so the server stays observable under overload.
  const bool gated =
      work.route.kind == Route::Kind::kAssign ||
      work.route.kind == Route::Kind::kReload ||
      work.route.kind == Route::Kind::kRefresh ||
      (work.route.kind == Route::Kind::kModel && request.method == "PUT");
  if (gated) {
    const int current = inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (current >= options_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      stats_.requests_shed.fetch_add(1, std::memory_order_relaxed);
      RespondInline(
          loop, conn,
          SerializeResponse(503, "application/json",
                            JsonError("shed: " +
                                      std::to_string(options_.max_inflight) +
                                      " requests already in flight"),
                            {"Retry-After: 1"}, request.keep_alive),
          !request.keep_alive);
      return;
    }
    work.counted = true;
  }

  work.conn = conn;
  work.request = std::move(request);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(work));
  }
  queue_cv_.notify_one();
}

void Server::EnqueueResponse(const std::shared_ptr<Connection>& conn,
                             std::string response, bool close_after) {
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->processing = false;
    if (conn->closed) {
      dropped = true;
    } else {
      conn->out += response;
      conn->close_after_write |= close_after;
      ++conn->unflushed_responses;
      pending_responses_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (dropped) {
    return;
  }
  IoLoop* loop = conn->loop;
  {
    std::lock_guard<std::mutex> lock(loop->mutex);
    loop->ready.push_back(conn);
  }
  WakeLoop(loop);
}

void Server::RespondInline(IoLoop* loop,
                           const std::shared_ptr<Connection>& conn,
                           std::string response, bool close_after) {
  EnqueueResponse(conn, std::move(response), close_after);
  FlushWrites(loop, conn);
}

void Server::FlushWrites(IoLoop* loop,
                         const std::shared_ptr<Connection>& conn) {
  bool close_now = false;
  bool want_out = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) {
      return;
    }
    while (conn->out_offset < conn->out.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->out.data() + conn->out_offset,
                 conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_offset += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        want_out = true;
        break;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      close_now = true;  // Peer vanished mid-response.
      break;
    }
    if (conn->out_offset == conn->out.size()) {
      conn->out.clear();
      conn->out_offset = 0;
      pending_responses_.fetch_sub(conn->unflushed_responses,
                                   std::memory_order_relaxed);
      conn->unflushed_responses = 0;
      close_now |= conn->close_after_write;
    }
  }
  if (close_now) {
    CloseConnection(loop, conn);
    return;
  }
  if (want_out != conn->want_epollout) {
    conn->want_epollout = want_out;
    epoll_event event{};
    event.events =
        (conn->read_paused ? 0u : static_cast<uint32_t>(EPOLLIN)) |
        (want_out ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    event.data.fd = conn->fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &event);
  }
}

// ---------------------------------------------------------------------------
// Streaming assign

void Server::BeginStream(IoLoop* loop,
                         const std::shared_ptr<Connection>& conn,
                         HttpRequest request, const Deadline& deadline) {
  auto session = std::make_shared<StreamSession>();
  session->keep_alive = request.keep_alive;
  session->deadline = deadline;
  stats_.requests_stream.fetch_add(1, std::memory_order_relaxed);

  const Route route = ParseRoute(request.target);
  Status status;
  std::shared_ptr<registry::ModelEntry> entry;
  if (route.kind == Route::Kind::kBadName) {
    status = Status::InvalidArgument(route.error);
  } else if (route.kind != Route::Kind::kAssign) {
    status = Status::InvalidArgument(
        "stream: only assign targets accept " +
        std::string(kStreamContentType));
  } else {
    entry = registry_->Find(route.model);
    if (entry == nullptr) {
      status = Status::NotFound("no model named '" + route.model + "'");
    }
  }
  if (!status.ok()) {
    const int code = HttpStatusFromStatus(status);
    if (code >= 400 && code < 500) {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
    }
    // The declared body is still inbound: poison the parser path so it is
    // drained and discarded, answer, and close.
    conn->protocol_error = true;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->processing = false;
    }
    RespondInline(loop, conn,
                  SerializeResponse(code, "application/json",
                                    JsonError(status.ToString()), {},
                                    /*keep_alive=*/false),
                  /*close_after=*/true);
    return;
  }

  // Admission: a stream holds one server-wide slot (and one per-model
  // slot) for its entire life, however many frames it carries.
  const int current = inflight_.fetch_add(1, std::memory_order_acq_rel);
  const int model_current =
      entry->inflight.fetch_add(1, std::memory_order_acq_rel);
  if (current >= options_.max_inflight ||
      (options_.model_max_inflight > 0 &&
       model_current >= options_.model_max_inflight)) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    entry->inflight.fetch_sub(1, std::memory_order_acq_rel);
    stats_.requests_shed.fetch_add(1, std::memory_order_relaxed);
    entry->stats.requests_shed.fetch_add(1, std::memory_order_relaxed);
    conn->protocol_error = true;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->processing = false;
    }
    RespondInline(loop, conn,
                  SerializeResponse(503, "application/json",
                                    JsonError("shed: stream admission"),
                                    {"Retry-After: 1"},
                                    /*keep_alive=*/false),
                  /*close_after=*/true);
    return;
  }
  session->counted = true;
  session->entry = std::move(entry);
  // Pin the engine once: every frame of this stream is answered by the
  // same snapshot, whatever reloads or deletes happen mid-stream.
  session->engine = session->entry->engine();
  session->entry->stats.requests_stream.fetch_add(1,
                                                  std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->processing = false;
    conn->stream = session;
  }
  PumpStream(loop, conn);
}

void Server::PumpStream(IoLoop* loop,
                        const std::shared_ptr<Connection>& conn) {
  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed || conn->processing) {
      return;  // A worker owns the connection; resume when it answers.
    }
    session = conn->stream;
  }
  if (session == nullptr) {
    return;
  }
  HttpParser& parser = conn->parser;
  while (true) {
    if (!session->have_len) {
      parser.TakeStreamBytes(4 - session->lenbuf.size(), &session->lenbuf);
      if (session->lenbuf.size() < 4) {
        if (!parser.stream_active()) {
          EndStreamWithError(
              loop, conn, session,
              Status::InvalidArgument(
                  "stream: body ended inside a frame header"));
          return;
        }
        SetReadPaused(loop, conn, false);
        return;  // Need more bytes.
      }
      const auto* p =
          reinterpret_cast<const unsigned char*>(session->lenbuf.data());
      const uint32_t frame_len =
          static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
          (static_cast<uint32_t>(p[2]) << 16) |
          (static_cast<uint32_t>(p[3]) << 24);
      session->lenbuf.clear();
      if (frame_len == 0) {
        FinishStream(loop, conn, session);
        return;
      }
      if (frame_len > options_.max_body_bytes) {
        EndStreamWithError(
            loop, conn, session,
            Status::ResourceExhausted(
                "stream: frame of " + std::to_string(frame_len) +
                " bytes exceeds the " +
                std::to_string(options_.max_body_bytes) + "-byte cap"));
        return;
      }
      session->frame_len = frame_len;
      session->have_len = true;
      session->frame.clear();
      session->frame.reserve(frame_len);
    }
    parser.TakeStreamBytes(session->frame_len - session->frame.size(),
                           &session->frame);
    if (session->frame.size() < session->frame_len) {
      if (!parser.stream_active()) {
        EndStreamWithError(
            loop, conn, session,
            Status::InvalidArgument("stream: body ended inside a frame"));
        return;
      }
      SetReadPaused(loop, conn, false);
      return;  // Need more bytes.
    }
    // Frame complete: hand it to a worker. Reads stay paused until the
    // frame answers — one frame in flight per connection is the
    // backpressure that bounds both queue depth and memory.
    session->have_len = false;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->closed) {
        return;
      }
      conn->processing = true;
    }
    SetReadPaused(loop, conn, true);
    RequestWork work;
    work.conn = conn;
    work.stream = session;
    work.frame = std::move(session->frame);
    session->frame = std::string();
    work.deadline = session->deadline;
    work.start = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      queue_.push_back(std::move(work));
    }
    queue_cv_.notify_one();
    return;
  }
}

void Server::FinishStream(IoLoop* loop,
                          const std::shared_ptr<Connection>& conn,
                          const std::shared_ptr<StreamSession>& session) {
  if (conn->parser.stream_active()) {
    EndStreamWithError(
        loop, conn, session,
        Status::InvalidArgument(
            "stream: trailing bytes after the terminator frame"));
    return;
  }
  std::string out;
  if (!session->head_sent) {
    // Zero-frame stream: the response is just head + terminal chunk.
    out += SerializeChunkedResponseHead(200, "application/octet-stream", {},
                                        session->keep_alive);
  }
  out += EncodeChunk("");
  const bool close_after = !session->keep_alive;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (!session->released) {
      session->released = true;
      if (session->counted) {
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
      }
      session->entry->inflight.fetch_sub(1, std::memory_order_acq_rel);
    }
    conn->stream.reset();
  }
  SetReadPaused(loop, conn, false);
  RespondInline(loop, conn, std::move(out), close_after);
}

void Server::EndStreamWithError(IoLoop* loop,
                                const std::shared_ptr<Connection>& conn,
                                const std::shared_ptr<StreamSession>& session,
                                const Status& status) {
  stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
  std::string response;
  if (!session->head_sent) {
    response = SerializeResponse(HttpStatusFromStatus(status),
                                 "application/json",
                                 JsonError(status.ToString()), {},
                                 /*keep_alive=*/false);
  }
  // After the chunked head went out there is no in-band way to signal the
  // error: abort without the terminal chunk so the client sees a torn
  // stream, never a silently truncated success.
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (!session->released) {
      session->released = true;
      if (session->counted) {
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
      }
      session->entry->inflight.fetch_sub(1, std::memory_order_acq_rel);
    }
    conn->stream.reset();
  }
  conn->protocol_error = true;
  SetReadPaused(loop, conn, false);
  RespondInline(loop, conn, std::move(response), /*close_after=*/true);
}

void Server::ProcessStreamFrame(RequestWork& work) {
  const std::shared_ptr<StreamSession>& session = work.stream;
  const std::shared_ptr<registry::ModelEntry>& entry = session->entry;
  Dataset points(1);
  Status status = ParseAssignBody(work.frame, PayloadEncoding::kBinary,
                                  options_.max_points_per_request, &points);
  if (status.ok() && points.dim() != session->engine->dim()) {
    status = Status::InvalidArgument(
        "assign: frame has dimension " + std::to_string(points.dim()) +
        ", model expects " + std::to_string(session->engine->dim()));
  }
  std::vector<int32_t> labels;
  if (status.ok()) {
    status = session->engine->AssignBatch(points, &labels, work.deadline);
  }
  if (!status.ok()) {
    const int code = HttpStatusFromStatus(status);
    if (code == 504) {
      stats_.num_deadline_hits.fetch_add(1, std::memory_order_relaxed);
      entry->stats.deadline_hits.fetch_add(1, std::memory_order_relaxed);
    } else if (code >= 400 && code < 500) {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
    }
    std::string response;
    if (!session->head_sent) {
      response = SerializeResponse(code, "application/json",
                                   JsonError(status.ToString()), {},
                                   /*keep_alive=*/false);
    }
    // Empty response after the head => abrupt close (torn stream), which
    // is the only honest signal left mid-response.
    EnqueueResponse(work.conn, std::move(response), /*close_after=*/true);
    return;
  }
  stats_.stream_frames.fetch_add(1, std::memory_order_relaxed);
  stats_.points_assigned.fetch_add(static_cast<uint64_t>(points.size()),
                                   std::memory_order_relaxed);
  entry->stats.stream_frames.fetch_add(1, std::memory_order_relaxed);
  entry->stats.points_assigned.fetch_add(
      static_cast<uint64_t>(points.size()), std::memory_order_relaxed);
  ++session->frames;
  if (options_.online_refresh || entry->journal() != nullptr) {
    uint64_t absorbed = 0;
    const Status refresh =
        session->engine->AbsorbCoreAdjacent(points, labels, &absorbed);
    if (refresh.ok()) {
      stats_.cores_absorbed.fetch_add(absorbed, std::memory_order_relaxed);
      entry->stats.cores_absorbed.fetch_add(absorbed,
                                            std::memory_order_relaxed);
    } else {
      stats_.refresh_failures.fetch_add(1, std::memory_order_relaxed);
      entry->stats.refresh_failures.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const auto elapsed = std::chrono::duration<double, std::micro>(
      std::chrono::steady_clock::now() - work.start);
  entry->stats.assign_latency.Record(elapsed.count());
  std::string out;
  if (!session->head_sent) {
    out += SerializeChunkedResponseHead(200, "application/octet-stream", {},
                                        session->keep_alive);
    session->head_sent = true;
  }
  out += EncodeChunk(EncodeAssignResponse(labels, PayloadEncoding::kBinary));
  EnqueueResponse(work.conn, std::move(out), /*close_after=*/false);
}

// ---------------------------------------------------------------------------
// Worker pool

void Server::WorkerMain() {
  while (true) {
    RequestWork work;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) {
          return;
        }
        continue;
      }
      work = std::move(queue_.front());
      queue_.pop_front();
    }
    if (work.stream != nullptr) {
      // One stream frame; the session's admission slots outlive it.
      ProcessStreamFrame(work);
      continue;
    }
    std::string response = ProcessRequest(work);
    if (work.route.kind == Route::Kind::kAssign) {
      const auto elapsed = std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - work.start);
      stats_.assign_latency.Record(elapsed.count());
    }
    EnqueueResponse(work.conn, std::move(response),
                    !work.request.keep_alive);
    if (work.counted) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

std::string Server::ProcessRequest(const RequestWork& work) {
  const HttpRequest& request = work.request;
  const Deadline& deadline = work.deadline;
  const Route& route = work.route;
  switch (route.kind) {
    case Route::Kind::kHealthz: {
      if (request.method != "GET") {
        stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
        return MethodNotAllowed(request);
      }
      // Still 200 while durability is degraded: the server keeps answering
      // queries correctly, it just cannot promise overlays survive a
      // crash. Probes that care grep the body.
      std::string body = "ok\n";
      bool degraded = false;
      for (const auto& entry : registry_->List()) {
        if (entry->journal() != nullptr && entry->journal()->degraded()) {
          degraded = true;
          break;
        }
      }
      if (degraded) {
        body += "durability: degraded\n";
      }
      return SerializeResponse(200, "text/plain", std::move(body), {},
                               request.keep_alive);
    }
    case Route::Kind::kStatz: {
      if (request.method != "GET") {
        stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
        return MethodNotAllowed(request);
      }
      return SerializeResponse(200, "application/json", HandleStatz(), {},
                               request.keep_alive);
    }
    case Route::Kind::kModels: {
      if (request.method != "GET") {
        stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
        return MethodNotAllowed(request);
      }
      return HandleModelList(request);
    }
    case Route::Kind::kModel: {
      if (request.method == "PUT") {
        return HandleModelCreate(request, route.model);
      }
      if (request.method == "GET") {
        return HandleModelGet(request, route.model);
      }
      if (request.method == "DELETE") {
        return HandleModelDelete(request, route.model);
      }
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
      return MethodNotAllowed(request);
    }
    case Route::Kind::kAssign:
    case Route::Kind::kRefresh: {
      if (request.method != "POST") {
        stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
        return MethodNotAllowed(request);
      }
      const std::shared_ptr<registry::ModelEntry> entry =
          registry_->Find(route.model);
      if (entry == nullptr) {
        stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
        return SerializeResponse(
            404, "application/json",
            JsonError("no model named '" + route.model + "'"), {},
            request.keep_alive);
      }
      // Per-model admission rides on top of the server-wide gate: one
      // tenant saturating its own limit cannot starve the others.
      const int model_current =
          entry->inflight.fetch_add(1, std::memory_order_acq_rel);
      if (options_.model_max_inflight > 0 &&
          model_current >= options_.model_max_inflight) {
        entry->inflight.fetch_sub(1, std::memory_order_acq_rel);
        stats_.requests_shed.fetch_add(1, std::memory_order_relaxed);
        entry->stats.requests_shed.fetch_add(1, std::memory_order_relaxed);
        return SerializeResponse(
            503, "application/json",
            JsonError("shed: model '" + route.model + "' has " +
                      std::to_string(options_.model_max_inflight) +
                      " requests already in flight"),
            {"Retry-After: 1"}, request.keep_alive);
      }
      std::string response =
          route.kind == Route::Kind::kAssign
              ? HandleAssign(entry, request, deadline)
              : HandleRefresh(entry, request, deadline);
      entry->inflight.fetch_sub(1, std::memory_order_acq_rel);
      if (route.kind == Route::Kind::kAssign) {
        const auto elapsed = std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - work.start);
        entry->stats.assign_latency.Record(elapsed.count());
      }
      return response;
    }
    case Route::Kind::kReload:
    case Route::Kind::kSnapshot: {
      if (request.method != "POST") {
        stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
        return MethodNotAllowed(request);
      }
      const std::shared_ptr<registry::ModelEntry> entry =
          registry_->Find(route.model);
      if (entry == nullptr) {
        stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
        return SerializeResponse(
            404, "application/json",
            JsonError("no model named '" + route.model + "'"), {},
            request.keep_alive);
      }
      return route.kind == Route::Kind::kReload
                 ? HandleReload(entry, request, deadline)
                 : HandleSnapshot(entry, request);
    }
    case Route::Kind::kBadName: {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
      return SerializeResponse(400, "application/json",
                               JsonError(route.error), {},
                               request.keep_alive);
    }
    case Route::Kind::kUnknown:
      break;
  }
  stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
  return SerializeResponse(404, "application/json",
                           JsonError("no handler for " + request.target), {},
                           request.keep_alive);
}

// ---------------------------------------------------------------------------
// Handlers

std::string Server::HandleAssign(
    const std::shared_ptr<registry::ModelEntry>& entry,
    const HttpRequest& request, const Deadline& deadline) {
  PayloadEncoding encoding = PayloadEncoding::kJson;
  Status status =
      EncodingFromContentType(request.Header("Content-Type"), &encoding);
  Dataset points(1);
  if (status.ok()) {
    status = ParseAssignBody(request.body, encoding,
                             options_.max_points_per_request, &points);
  }
  std::shared_ptr<AssignmentEngine> engine = entry->engine();
  if (status.ok() && points.dim() != engine->dim()) {
    status = Status::InvalidArgument(
        "assign: request has dimension " + std::to_string(points.dim()) +
        ", model expects " + std::to_string(engine->dim()));
  }
  std::vector<int32_t> labels;
  if (status.ok()) {
    status = engine->AssignBatch(points, &labels, deadline);
  }
  if (!status.ok()) {
    const int code = HttpStatusFromStatus(status);
    if (code == 504) {
      // Deadline expiry is an expected production outcome: count it and
      // hand back the partial serving stats alongside the error.
      const uint64_t hits =
          stats_.num_deadline_hits.fetch_add(1, std::memory_order_relaxed) +
          1;
      entry->stats.deadline_hits.fetch_add(1, std::memory_order_relaxed);
      return SerializeResponse(
          504, "application/json",
          "{\"error\":\"deadline exceeded\",\"num_deadline_hits\":" +
              std::to_string(hits) + ",\"points_received\":" +
              std::to_string(points.size()) + "}",
          {}, request.keep_alive);
    }
    if (code >= 400 && code < 500) {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
    }
    return SerializeResponse(code, "application/json",
                             JsonError(status.ToString()), {},
                             request.keep_alive);
  }
  stats_.requests_assign.fetch_add(1, std::memory_order_relaxed);
  stats_.points_assigned.fetch_add(static_cast<uint64_t>(points.size()),
                                   std::memory_order_relaxed);
  entry->stats.requests_assign.fetch_add(1, std::memory_order_relaxed);
  entry->stats.points_assigned.fetch_add(
      static_cast<uint64_t>(points.size()), std::memory_order_relaxed);
  if (options_.online_refresh || entry->journal() != nullptr) {
    uint64_t absorbed = 0;
    const Status refresh =
        engine->AbsorbCoreAdjacent(points, labels, &absorbed);
    if (refresh.ok()) {
      stats_.cores_absorbed.fetch_add(absorbed, std::memory_order_relaxed);
      entry->stats.cores_absorbed.fetch_add(absorbed,
                                            std::memory_order_relaxed);
    } else {
      // Refresh is best-effort: the labels are already correct for the
      // pinned snapshot, so a failed absorb pass degrades to no-op.
      stats_.refresh_failures.fetch_add(1, std::memory_order_relaxed);
      entry->stats.refresh_failures.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return SerializeResponse(200, ContentTypeName(encoding),
                           EncodeAssignResponse(labels, encoding), {},
                           request.keep_alive);
}

std::string Server::HandleRefresh(
    const std::shared_ptr<registry::ModelEntry>& entry,
    const HttpRequest& request, const Deadline& deadline) {
  PayloadEncoding encoding = PayloadEncoding::kJson;
  Status status =
      EncodingFromContentType(request.Header("Content-Type"), &encoding);
  Dataset points(1);
  if (status.ok()) {
    status = ParseAssignBody(request.body, encoding,
                             options_.max_points_per_request, &points);
  }
  std::shared_ptr<AssignmentEngine> engine = entry->engine();
  if (status.ok() && points.dim() != engine->dim()) {
    status = Status::InvalidArgument(
        "refresh: request has dimension " + std::to_string(points.dim()) +
        ", model expects " + std::to_string(engine->dim()));
  }
  std::vector<int32_t> labels;
  if (status.ok()) {
    status = engine->AssignBatch(points, &labels, deadline);
  }
  uint64_t absorbed = 0;
  if (status.ok()) {
    // Unlike assign, refresh exists to feed the overlay: an absorb failure
    // is the request's failure, not a background shrug.
    status = engine->AbsorbCoreAdjacent(points, labels, &absorbed);
  }
  if (!status.ok()) {
    const int code = HttpStatusFromStatus(status);
    if (code >= 400 && code < 500) {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
    }
    entry->stats.refresh_failures.fetch_add(1, std::memory_order_relaxed);
    stats_.refresh_failures.fetch_add(1, std::memory_order_relaxed);
    return SerializeResponse(code, "application/json",
                             JsonError(status.ToString()), {},
                             request.keep_alive);
  }
  stats_.cores_absorbed.fetch_add(absorbed, std::memory_order_relaxed);
  entry->stats.cores_absorbed.fetch_add(absorbed, std::memory_order_relaxed);
  return SerializeResponse(
      200, "application/json",
      "{\"refreshed\":true,\"points\":" + std::to_string(points.size()) +
          ",\"absorbed\":" + std::to_string(absorbed) + "}",
      {}, request.keep_alive);
}

std::string Server::ModelJson(
    const std::shared_ptr<registry::ModelEntry>& entry) {
  const std::shared_ptr<AssignmentEngine> engine = entry->engine();
  const registry::ModelStats& s = entry->stats;
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", engine->model_crc());
  std::string out = "{";
  const auto field = [&out](const char* name, uint64_t value) {
    out += "\"";
    out += name;
    out += "\":" + std::to_string(value) + ",";
  };
  // The name charset is [a-z0-9_-], so it is JSON-safe by construction.
  out += "\"name\":\"" + entry->name() + "\",";
  out += "\"model_version\":" + std::to_string(engine->model_version()) + ",";
  out += "\"model_crc\":\"" + std::string(crc_hex) + "\",";
  out += "\"dim\":" + std::to_string(engine->dim()) + ",";
  field("requests_assign", s.requests_assign.load(std::memory_order_relaxed));
  field("points_assigned", s.points_assigned.load(std::memory_order_relaxed));
  field("requests_stream", s.requests_stream.load(std::memory_order_relaxed));
  field("stream_frames", s.stream_frames.load(std::memory_order_relaxed));
  field("requests_shed", s.requests_shed.load(std::memory_order_relaxed));
  field("deadline_hits", s.deadline_hits.load(std::memory_order_relaxed));
  field("cores_absorbed", s.cores_absorbed.load(std::memory_order_relaxed));
  field("refresh_failures",
        s.refresh_failures.load(std::memory_order_relaxed));
  field("reloads_ok", s.reloads_ok.load(std::memory_order_relaxed));
  field("reloads_failed", s.reloads_failed.load(std::memory_order_relaxed));
  field("reload_attempts", s.reload_attempts.load(std::memory_order_relaxed));
  field("checkpoints_ok", s.checkpoints_ok.load(std::memory_order_relaxed));
  field("checkpoints_failed",
        s.checkpoints_failed.load(std::memory_order_relaxed));
  out += "\"inflight\":" +
         std::to_string(entry->inflight.load(std::memory_order_relaxed)) +
         ",";
  out += "\"assign_latency_p50_us\":" +
         std::to_string(s.assign_latency.PercentileMicros(50.0)) + ",";
  out += "\"assign_latency_p99_us\":" +
         std::to_string(s.assign_latency.PercentileMicros(99.0)) + ",";
  out += std::string("\"durable\":") +
         (entry->journal() != nullptr ? "true" : "false") + ",";
  out += std::string("\"degraded\":") +
         (entry->journal() != nullptr && entry->journal()->degraded()
              ? "true"
              : "false");
  out += "}";
  return out;
}

std::string Server::ModelsJson() {
  std::string out = "{";
  bool first = true;
  for (const auto& entry : registry_->List()) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + entry->name() + "\":" + ModelJson(entry);
  }
  out += "}";
  return out;
}

std::string Server::HandleStatz() {
  // Legacy single-model identity fields come from the default model (the
  // one the unnamed routes alias); a registry-only server without one
  // reports zeros there and everything real under "models".
  const std::shared_ptr<registry::ModelEntry> default_entry =
      registry_->Find("default");
  const std::shared_ptr<AssignmentEngine> engine =
      default_entry == nullptr ? nullptr : default_entry->engine();
  AssignmentEngine::ServeStats engine_stats;
  if (engine != nullptr) {
    engine_stats = engine->stats();
  }

  // Per-site injected-fault hit counters (satellite observability of the
  // fault framework): always rendered, all zeros when nothing is armed.
  std::string failpoints = "{";
  bool first_site = true;
  for (const std::string_view site : FailpointRegistry::Sites()) {
    if (!first_site) {
      failpoints += ",";
    }
    first_site = false;
    failpoints += "\"";
    failpoints += site;
    failpoints += "\":" +
                  std::to_string(FailpointRegistry::Instance().HitCount(site));
  }
  failpoints += "}";

  std::string durability;
  if (default_entry != nullptr && default_entry->journal() != nullptr) {
    const std::shared_ptr<OverlayJournal>& journal = default_entry->journal();
    const RecoveryReport& recovery = default_entry->recovery();
    const OverlayJournalStats js = journal->stats();
    const auto field = [&durability](const char* name, uint64_t value) {
      durability += "\"";
      durability += name;
      durability += "\":" + std::to_string(value) + ",";
    };
    durability = "{";
    durability += "\"fsync\":\"";
    durability += FsyncPolicyName(journal->policy());
    durability += "\",";
    field("journal_records", js.records);
    field("journal_bytes", js.bytes);
    field("appends_ok", js.appends_ok);
    field("records_dropped", js.records_dropped);
    field("fsyncs", js.fsyncs);
    field("fsync_failures", js.fsync_failures);
    field("journal_resets", js.resets);
    field("records_replayed", recovery.records_replayed);
    field("torn_bytes_truncated", recovery.torn_bytes_truncated);
    field("journals_discarded", recovery.journals_discarded);
    field("recovery_load_attempts",
          static_cast<uint64_t>(recovery.load_attempts));
    durability += std::string("\"loaded_from_snapshot\":") +
                  (recovery.loaded_from_snapshot ? "true" : "false") + ",";
    durability += std::string("\"degraded\":") +
                  (journal->degraded() ? "true" : "false");
    durability += "}";
  }

  return stats_.ToJson(
      engine != nullptr ? engine->model_version() : 0,
      engine != nullptr ? engine->model_crc() : 0,
      engine != nullptr ? engine->model().sv_budget : 0,
      engine != nullptr ? engine->model().sample_threshold : 0,
      engine_stats.points_assigned, engine_stats.sphere_rejections,
      engine_stats.range_queries,
      inflight_.load(std::memory_order_relaxed), options_.max_inflight,
      simd::BackendName(simd::ActiveBackend()),
      engine != nullptr ? engine->shard_count() : 0,
      cache::CacheManager::Global().StatsJson(), durability, failpoints,
      ModelsJson());
}

std::string Server::HandleReload(
    const std::shared_ptr<registry::ModelEntry>& entry,
    const HttpRequest& request, const Deadline& deadline) {
  std::string path;
  if (const Status parsed = ExtractPathBody(request.body, &path);
      !parsed.ok()) {
    stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
    return SerializeResponse(400, "application/json",
                             JsonError("reload: " + parsed.message()), {},
                             request.keep_alive);
  }
  RetryReport report;
  const Status status = ReloadEntry(entry, path, deadline, &report);
  if (!status.ok()) {
    const int code = HttpStatusFromStatus(status);
    if (code >= 400 && code < 500) {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
    }
    return SerializeResponse(
        code, "application/json",
        "{\"error\":\"" + status.ToString() + "\",\"attempts\":" +
            std::to_string(report.attempts) + "}",
        {}, request.keep_alive);
  }
  std::shared_ptr<AssignmentEngine> engine = entry->engine();
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", engine->model_crc());
  return SerializeResponse(
      200, "application/json",
      "{\"reloaded\":true,\"model\":\"" + entry->name() +
          "\",\"model_version\":" +
          std::to_string(engine->model_version()) + ",\"model_crc\":\"" +
          crc_hex + "\",\"attempts\":" + std::to_string(report.attempts) +
          "}",
      {}, request.keep_alive);
}

std::string Server::HandleSnapshot(
    const std::shared_ptr<registry::ModelEntry>& entry,
    const HttpRequest& request) {
  uint32_t crc = 0;
  uint64_t folded = 0;
  const Status status = SnapshotEntry(entry, &crc, &folded);
  if (!status.ok()) {
    const int code = HttpStatusFromStatus(status);
    if (code >= 400 && code < 500) {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
    }
    return SerializeResponse(code, "application/json",
                             JsonError(status.ToString()), {},
                             request.keep_alive);
  }
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", crc);
  return SerializeResponse(
      200, "application/json",
      "{\"snapshot\":true,\"path\":\"" + entry->durability().snapshot_path +
          "\",\"model_crc\":\"" + crc_hex +
          "\",\"folded_records\":" + std::to_string(folded) + "}",
      {}, request.keep_alive);
}

std::string Server::HandleModelCreate(const HttpRequest& request,
                                      const std::string& name) {
  Status status;
  std::shared_ptr<registry::ModelEntry> entry;
  if (AsciiCaseEqual(request.Header("Content-Type"),
                     "application/octet-stream")) {
    // Create-from-upload: the body is the serialized model artifact.
    status = registry_->CreateFromBytes(
        name,
        std::span<const uint8_t>(
            reinterpret_cast<const uint8_t*>(request.body.data()),
            request.body.size()),
        &entry);
  } else {
    // Create-from-path: plain text or {"path": "..."} like reload.
    std::string path;
    status = ExtractPathBody(request.body, &path);
    if (status.ok()) {
      status = registry_->CreateFromFile(name, path, &entry);
    }
  }
  if (!status.ok()) {
    const int code = HttpStatusFromStatus(status);
    if (code >= 400 && code < 500) {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
    }
    return SerializeResponse(code, "application/json",
                             JsonError(status.ToString()), {},
                             request.keep_alive);
  }
  stats_.models_created.fetch_add(1, std::memory_order_relaxed);
  const std::shared_ptr<AssignmentEngine> engine = entry->engine();
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", engine->model_crc());
  return SerializeResponse(
      201, "application/json",
      "{\"created\":true,\"model\":\"" + name + "\",\"model_version\":" +
          std::to_string(engine->model_version()) + ",\"model_crc\":\"" +
          crc_hex + "\",\"dim\":" + std::to_string(engine->dim()) + "}",
      {}, request.keep_alive);
}

std::string Server::HandleModelGet(const HttpRequest& request,
                                   const std::string& name) {
  const std::shared_ptr<registry::ModelEntry> entry = registry_->Find(name);
  if (entry == nullptr) {
    stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
    return SerializeResponse(404, "application/json",
                             JsonError("no model named '" + name + "'"), {},
                             request.keep_alive);
  }
  return SerializeResponse(200, "application/json", ModelJson(entry), {},
                           request.keep_alive);
}

std::string Server::HandleModelDelete(const HttpRequest& request,
                                      const std::string& name) {
  const Status status = registry_->Remove(name);
  if (!status.ok()) {
    const int code = HttpStatusFromStatus(status);
    if (code >= 400 && code < 500) {
      stats_.requests_bad.fetch_add(1, std::memory_order_relaxed);
    }
    return SerializeResponse(code, "application/json",
                             JsonError(status.ToString()), {},
                             request.keep_alive);
  }
  stats_.models_deleted.fetch_add(1, std::memory_order_relaxed);
  return SerializeResponse(200, "application/json",
                           "{\"deleted\":true,\"model\":\"" + name + "\"}",
                           {}, request.keep_alive);
}

std::string Server::HandleModelList(const HttpRequest& request) {
  std::string body = "{\"models\":[";
  bool first = true;
  size_t count = 0;
  for (const auto& entry : registry_->List()) {
    if (!first) {
      body += ",";
    }
    first = false;
    body += ModelJson(entry);
    ++count;
  }
  body += "],\"count\":" + std::to_string(count) + "}";
  return SerializeResponse(200, "application/json", std::move(body), {},
                           request.keep_alive);
}

// ---------------------------------------------------------------------------
// Reload / snapshot / durability

Status Server::ReloadEntry(const std::shared_ptr<registry::ModelEntry>& entry,
                           const std::string& path, const Deadline& deadline,
                           RetryReport* report) {
  RetryReport local;
  RetryReport& out = report != nullptr ? *report : local;
  const Status status = entry->Reload(path, deadline, &out);
  stats_.reload_attempts.fetch_add(static_cast<uint64_t>(out.attempts),
                                   std::memory_order_relaxed);
  if (status.ok()) {
    stats_.reloads_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.reloads_failed.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

Status Server::SnapshotEntry(
    const std::shared_ptr<registry::ModelEntry>& entry,
    uint32_t* snapshot_crc, uint64_t* folded_records) {
  const Status status = entry->Snapshot(snapshot_crc, folded_records);
  if (status.ok()) {
    stats_.checkpoints_ok.fetch_add(1, std::memory_order_relaxed);
  } else if (status.code() != Status::Code::kFailedPrecondition) {
    // Asking a non-durable model for a snapshot is a client error, not a
    // failed checkpoint attempt.
    stats_.checkpoints_failed.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

Status Server::Reload(const std::string& path, const Deadline& deadline,
                      RetryReport* report) {
  const std::shared_ptr<registry::ModelEntry> entry =
      registry_->Find("default");
  if (entry == nullptr) {
    return Status::NotFound("reload: no default model registered");
  }
  return ReloadEntry(entry, path, deadline, report);
}

Status Server::Snapshot(uint32_t* snapshot_crc, uint64_t* folded_records) {
  const std::shared_ptr<registry::ModelEntry> entry =
      registry_->Find("default");
  if (entry == nullptr) {
    return Status::FailedPrecondition(
        "snapshot: no default model registered");
  }
  return SnapshotEntry(entry, snapshot_crc, folded_records);
}

void Server::DurabilityMain() {
  using Clock = std::chrono::steady_clock;
  const bool interval_fsync =
      options_.durability.fsync == FsyncPolicy::kInterval &&
      options_.durability.fsync_interval_ms > 0;
  const bool auto_checkpoint = options_.durability.checkpoint_interval_ms > 0;
  const auto fsync_period =
      std::chrono::milliseconds(options_.durability.fsync_interval_ms);
  const auto checkpoint_period =
      std::chrono::milliseconds(options_.durability.checkpoint_interval_ms);
  Clock::time_point next_fsync = Clock::now() + fsync_period;
  Clock::time_point next_checkpoint = Clock::now() + checkpoint_period;

  std::unique_lock<std::mutex> lock(durability_mutex_);
  while (!stopping_.load(std::memory_order_acquire)) {
    Clock::time_point wake = Clock::now() + std::chrono::seconds(1);
    if (interval_fsync) {
      wake = std::min(wake, next_fsync);
    }
    if (auto_checkpoint) {
      wake = std::min(wake, next_checkpoint);
    }
    durability_cv_.wait_until(lock, wake, [this] {
      return stopping_.load(std::memory_order_acquire);
    });
    if (stopping_.load(std::memory_order_acquire)) {
      break;
    }
    lock.unlock();
    // One timer sweeps every registered model's journal: models created
    // after startup are picked up on the next tick automatically.
    if (interval_fsync && Clock::now() >= next_fsync) {
      for (const auto& entry : registry_->List()) {
        if (entry->journal() != nullptr) {
          // Failures are counted by the journal and surface as degraded
          // durability; the timer keeps ticking (the disk may come back).
          (void)entry->journal()->Sync();
        }
      }
      next_fsync = Clock::now() + fsync_period;
    }
    if (auto_checkpoint && Clock::now() >= next_checkpoint) {
      for (const auto& entry : registry_->List()) {
        if (entry->journal() != nullptr) {
          (void)SnapshotEntry(entry, nullptr, nullptr);
        }
      }
      next_checkpoint = Clock::now() + checkpoint_period;
    }
    lock.lock();
  }
}

void Server::Shutdown(const Deadline& drain) {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shutdown_done_) {
      return;
    }
    shutdown_done_ = true;
  }
  // Phase 1: stop taking new work; connections already accepted keep
  // being served.
  accepting_.store(false, std::memory_order_release);
  // Phase 2: drain — every dispatched request answers and every response
  // reaches the socket (or its connection dies), bounded by `drain`.
  while (!drain.Expired() &&
         (inflight_.load(std::memory_order_acquire) > 0 ||
          pending_responses_.load(std::memory_order_relaxed) > 0)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Phase 3: tear down loops, workers, and the durability timer.
  stopping_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  durability_cv_.notify_all();
  for (auto& loop : loops_) {
    WakeLoop(loop.get());
  }
  for (std::thread& worker : workers_) {
    worker.join();
  }
  for (auto& loop : loops_) {
    loop->thread.join();
  }
  if (durability_thread_.joinable()) {
    durability_thread_.join();
  }
  workers_.clear();
  loops_.clear();
  // Make everything absorbed up to the graceful stop durable, whatever
  // the fsync policy (failures already marked journals degraded).
  for (const auto& entry : registry_->List()) {
    if (entry->journal() != nullptr) {
      (void)entry->journal()->Sync();
    }
  }
}

Server::~Server() { Shutdown(); }

}  // namespace dbsvec::server
