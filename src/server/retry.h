#ifndef DBSVEC_SERVER_RETRY_H_
#define DBSVEC_SERVER_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"

namespace dbsvec::server {

/// Exponential backoff with deterministic jitter and a bounded attempt
/// budget, layered over the library's Status surface. Transient failure
/// categories — kIoError, kResourceExhausted, kUnavailable — are retried;
/// everything else (bad model file, invalid argument, deadline) fails fast.
struct RetryOptions {
  int max_attempts = 4;          ///< Total tries, including the first.
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 2000.0;
  /// Each sleep is scaled by a factor drawn uniformly from
  /// [1 - jitter, 1 + jitter] to decorrelate concurrent retriers.
  double jitter = 0.2;
  /// Jitter stream seed; fixed seed => reproducible backoff schedule.
  uint64_t seed = 1;
};

/// Outcome of one RetryPolicy::Run, for logs, /v1/statz, and tests.
struct RetryReport {
  int attempts = 0;                 ///< Tries actually made.
  std::vector<double> backoffs_ms;  ///< Sleep before each retry, in order.
  bool exhausted = false;           ///< Budget ran out on a retryable error.
};

class RetryPolicy {
 public:
  explicit RetryPolicy(const RetryOptions& options);

  /// True iff `status` is a transient failure worth retrying.
  static bool IsRetryable(const Status& status);

  /// Runs `op` until it succeeds, fails terminally, the attempt budget is
  /// exhausted, or `deadline` expires (checked before every attempt and
  /// honored while sleeping). On exhaustion the last transient error is
  /// wrapped as kUnavailable naming `what` and the attempt count, so
  /// callers (the HTTP router) map it to 503. `report` may be null.
  Status Run(std::string_view what, const Deadline& deadline,
             const std::function<Status()>& op,
             RetryReport* report = nullptr) const;

  /// The deterministic backoff schedule this policy would use: sleep before
  /// retry k (0-based), jitter applied. Exposed so tests assert the
  /// schedule without timing sleeps.
  std::vector<double> BackoffScheduleMs() const;

 private:
  RetryOptions options_;
};

}  // namespace dbsvec::server

#endif  // DBSVEC_SERVER_RETRY_H_
