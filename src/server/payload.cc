#include "server/payload.h"

#include <cmath>
#include <cstdlib>

#include "model/serialize.h"
#include "server/http.h"

namespace dbsvec::server {
namespace {

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("assign body: " + what);
}

/// Cursor over the JSON text; methods consume leading whitespace.
struct JsonCursor {
  std::string_view text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    SkipSpace();
    return pos < text.size() && text[pos] == c;
  }
};

Status ParseNumber(JsonCursor* cursor, double* out) {
  cursor->SkipSpace();
  const char* begin = cursor->text.data() + cursor->pos;
  char* end = nullptr;
  // The body is a std::string (NUL-terminated), so strtod stops at the
  // first non-number character without running off the buffer.
  const double value = std::strtod(begin, &end);
  if (end == begin) {
    return Malformed("expected a number at offset " +
                     std::to_string(cursor->pos));
  }
  if (!std::isfinite(value)) {
    return Malformed("non-finite coordinate at offset " +
                     std::to_string(cursor->pos));
  }
  cursor->pos += static_cast<size_t>(end - begin);
  *out = value;
  return Status::Ok();
}

Status ParseJsonPoints(std::string_view body, uint32_t max_points,
                       Dataset* points) {
  JsonCursor cursor{body};
  if (!cursor.Consume('{')) {
    return Malformed("expected '{'");
  }
  if (!cursor.Consume('"')) {
    return Malformed("expected \"points\" key");
  }
  constexpr std::string_view kKey = "points\"";
  if (cursor.text.substr(cursor.pos, kKey.size()) != kKey) {
    return Malformed("expected \"points\" key");
  }
  cursor.pos += kKey.size();
  if (!cursor.Consume(':') || !cursor.Consume('[')) {
    return Malformed("expected \"points\": [");
  }

  std::vector<double> row;
  int dim = -1;
  uint32_t count = 0;
  if (!cursor.Peek(']')) {
    do {
      if (!cursor.Consume('[')) {
        return Malformed("expected '[' opening row " + std::to_string(count));
      }
      row.clear();
      if (!cursor.Peek(']')) {
        do {
          double value = 0.0;
          DBSVEC_RETURN_IF_ERROR(ParseNumber(&cursor, &value));
          row.push_back(value);
        } while (cursor.Consume(','));
      }
      if (!cursor.Consume(']')) {
        return Malformed("expected ']' closing row " + std::to_string(count));
      }
      if (row.empty()) {
        return Malformed("row " + std::to_string(count) + " is empty");
      }
      if (dim < 0) {
        dim = static_cast<int>(row.size());
        *points = Dataset(dim);
      } else if (static_cast<int>(row.size()) != dim) {
        return Malformed("row " + std::to_string(count) + " has " +
                         std::to_string(row.size()) + " coordinates, row 0 " +
                         "has " + std::to_string(dim));
      }
      if (count >= max_points) {
        return Status::ResourceExhausted(
            "assign body: more than " + std::to_string(max_points) +
            " points in one request");
      }
      points->Append(row);
      ++count;
    } while (cursor.Consume(','));
  }
  if (!cursor.Consume(']') || !cursor.Consume('}')) {
    return Malformed("expected ]} at the end");
  }
  cursor.SkipSpace();
  if (cursor.pos != cursor.text.size()) {
    return Malformed("trailing bytes after the points object");
  }
  if (dim < 0) {
    return Malformed("no points given");
  }
  return Status::Ok();
}

Status ParseBinaryPoints(std::string_view body, uint32_t max_points,
                         Dataset* points) {
  const std::span<const uint8_t> bytes(
      reinterpret_cast<const uint8_t*>(body.data()), body.size());
  ByteReader reader(bytes);
  uint32_t count = 0;
  uint32_t dim = 0;
  DBSVEC_RETURN_IF_ERROR(reader.ReadU32(&count));
  DBSVEC_RETURN_IF_ERROR(reader.ReadU32(&dim));
  if (count == 0 || dim == 0) {
    return Malformed("binary header declares zero points or dimensions");
  }
  if (count > max_points) {
    return Status::ResourceExhausted(
        "assign body: more than " + std::to_string(max_points) +
        " points in one request");
  }
  if (static_cast<uint64_t>(count) * dim * 8 != reader.remaining()) {
    return Malformed("binary body size disagrees with its header");
  }
  std::vector<double> values;
  DBSVEC_RETURN_IF_ERROR(
      reader.ReadF64Vector(static_cast<size_t>(count) * dim, &values));
  for (const double v : values) {
    if (!std::isfinite(v)) {
      return Malformed("non-finite coordinate");
    }
  }
  *points = Dataset(static_cast<int>(dim), std::move(values));
  return Status::Ok();
}

}  // namespace

Status EncodingFromContentType(std::string_view content_type,
                               PayloadEncoding* encoding) {
  // Ignore any ";charset=..." parameter.
  if (const size_t semi = content_type.find(';');
      semi != std::string_view::npos) {
    content_type = content_type.substr(0, semi);
  }
  while (!content_type.empty() && content_type.back() == ' ') {
    content_type.remove_suffix(1);
  }
  if (content_type.empty() ||
      AsciiCaseEqual(content_type, "application/json")) {
    *encoding = PayloadEncoding::kJson;
    return Status::Ok();
  }
  if (AsciiCaseEqual(content_type, "application/octet-stream")) {
    *encoding = PayloadEncoding::kBinary;
    return Status::Ok();
  }
  return Status::InvalidArgument("assign: unsupported Content-Type '" +
                                 std::string(content_type) + "'");
}

Status ParseAssignBody(std::string_view body, PayloadEncoding encoding,
                       uint32_t max_points, Dataset* points) {
  return encoding == PayloadEncoding::kJson
             ? ParseJsonPoints(body, max_points, points)
             : ParseBinaryPoints(body, max_points, points);
}

std::string EncodeAssignResponse(const std::vector<int32_t>& labels,
                                 PayloadEncoding encoding) {
  if (encoding == PayloadEncoding::kJson) {
    std::string out = "{\"labels\":[";
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += std::to_string(labels[i]);
    }
    out += "]}";
    return out;
  }
  ByteWriter writer;
  writer.WriteU32(static_cast<uint32_t>(labels.size()));
  for (const int32_t label : labels) {
    writer.WriteI32(label);
  }
  const std::vector<uint8_t>& bytes = writer.bytes();
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

std::string_view ContentTypeName(PayloadEncoding encoding) {
  return encoding == PayloadEncoding::kJson ? "application/json"
                                            : "application/octet-stream";
}

}  // namespace dbsvec::server
