#ifndef DBSVEC_COMMON_THREAD_POOL_H_
#define DBSVEC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace dbsvec {

/// Fixed pool of worker threads executing statically partitioned jobs.
///
/// The pool is deliberately work-stealing-free: a job is a set of task
/// indices claimed off a shared counter, and `ParallelFor` maps task
/// indices to *contiguous* index ranges so each thread streams through
/// adjacent memory. Every parallel section in this library is structured
/// as "fan out pure computations, absorb results sequentially in a fixed
/// order", which keeps clustering output bit-identical to a sequential
/// run regardless of the thread count (see docs/ALGORITHM.md, "Threading
/// model").
///
/// Fault containment: an exception escaping a task no longer terminates
/// the process. The first exception (in task-index order) is captured,
/// every remaining task still runs, and `Execute` rethrows it on the
/// calling thread once the job has drained — so the pool itself survives
/// and stays reusable. Fallible tasks should prefer the Status channel
/// (`ExecuteWithStatus` / `ParallelForWithStatus`), which reports the
/// lowest-index failure deterministically.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (>= 1). When `pin_cpus` is
  /// non-empty, worker i pins itself to CPU `pin_cpus[i % pin_cpus.size()]`
  /// (best-effort: a failed or unsupported affinity call leaves the worker
  /// unpinned; the calling thread is never pinned).
  explicit ThreadPool(int num_workers, std::vector<int> pin_cpus = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute a job: the workers plus the caller.
  int concurrency() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs task(0) .. task(num_tasks - 1) across the workers; the calling
  /// thread participates. Blocks until every task has finished. A call
  /// made from inside a pool task runs all tasks inline on the calling
  /// thread (no nested parallelism, no deadlock). If any task throws, the
  /// first captured exception (by task index) is rethrown here after the
  /// job drains.
  void Execute(int num_tasks, const std::function<void(int)>& task);

  /// Like Execute for fallible tasks: every task runs (a failure does not
  /// cancel the remaining tasks — results stay deterministic), and the
  /// non-OK Status of the lowest-index failing task is returned. A thrown
  /// exception is contained and reported as Status::Internal carrying the
  /// exception message.
  Status ExecuteWithStatus(int num_tasks,
                           const std::function<Status(int)>& task);

  /// Runs task(group, item) for every group g in [0, group_task_counts
  /// .size()) and item in [0, group_task_counts[g]). Group-affine claiming:
  /// each participating thread starts draining the group matching its
  /// worker index (modulo the group count) and only then migrates to other
  /// groups, so with pinned workers a group's tasks mostly run on the
  /// group's home CPUs while idle threads still steal cross-group work.
  /// Tasks must not throw mid-group if full execution is required — prefer
  /// a caller-managed Status channel. Runs inline, in (group, item) order,
  /// when called from inside a pool task.
  void ExecuteGrouped(const std::vector<int>& group_task_counts,
                      const std::function<void(int group, int item)>& task);

  /// True when the current thread is a pool worker executing a task.
  static bool InsideWorker();

  /// This thread's stable index within the pool job: workers are
  /// 0..num_workers-1, the participating caller is num_workers, and any
  /// other thread is -1.
  static int WorkerIndex();

 private:
  void WorkerLoop(int worker_index);
  void RunTasks();

  /// Records `exception` as the job's failure if it is the lowest task
  /// index seen so far.
  void RecordTaskException(int task, std::exception_ptr exception);

  std::vector<std::thread> workers_;
  const std::vector<int> pin_cpus_;

  // Serializes external (non-worker) submitters: the pool has exactly one
  // job slot (`task_`/`num_tasks_`/`next_task_`/`epoch_`), so two threads
  // submitting concurrently — e.g. server workers each running AssignBatch —
  // must take turns. Held across the whole job, which a submitter already
  // blocks for anyway; nested calls from pool tasks run inline and never
  // touch this.
  std::mutex submit_mutex_;

  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;
  bool stop_ = false;
  int workers_remaining_ = 0;  // Workers yet to finish the current epoch.

  // Current job; valid for the duration of one epoch.
  const std::function<void(int)>* task_ = nullptr;
  int num_tasks_ = 0;
  std::atomic<int> next_task_{0};

  // First exception of the current job (lowest task index wins, so the
  // rethrown failure does not depend on worker scheduling).
  std::mutex exception_mutex_;
  std::exception_ptr first_exception_;
  int first_exception_task_ = -1;
};

/// Sets the global thread budget used by every parallel section:
/// 0 = hardware concurrency (the default), 1 = fully sequential, n > 1 =
/// exactly n threads. Takes effect on the next parallel section; not
/// thread-safe against concurrent parallel sections (set it at startup or
/// between runs).
void SetGlobalThreads(int threads);

/// The resolved global thread budget (>= 1).
int GlobalThreads();

/// Sets the CPU pinning plan for global-pool workers (see the ThreadPool
/// constructor); empty (the default) leaves workers unpinned. A changed
/// plan retires the current pool, so like SetGlobalThreads this must not
/// race a parallel section. The plan itself never affects task-to-thread
/// assignment, only which CPUs the threads run on, so clustering output is
/// unchanged by pinning.
void SetGlobalPinning(std::vector<int> cpus);

/// The process-wide pool honoring `SetGlobalThreads`, or nullptr when the
/// budget is 1 (sequential mode — callers take their unchanged serial
/// path).
ThreadPool* GlobalThreadPool();

/// Number of contiguous chunks `ParallelForChunked` splits `n` items into
/// under the current global thread budget: 1 in sequential mode, else at
/// most one chunk per thread with every chunk at least `grain` items.
size_t ParallelChunks(size_t n, size_t grain);

/// Runs body(chunk, begin, end) over the `ParallelChunks(n, grain)`
/// contiguous chunks of [0, n). Chunk boundaries depend only on `n`,
/// `grain`, and the thread budget, so callers may pre-size per-chunk
/// accumulators and fold them in chunk order for deterministic results.
/// Runs inline when the budget is 1, `n` fits a single chunk, or the
/// caller is itself a pool task.
void ParallelForChunked(
    size_t n, size_t grain,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& body);

/// Runs body(begin, end) over contiguous chunks of [0, n) in parallel.
void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t begin, size_t end)>& body);

/// Fallible ParallelFor: every chunk runs to completion and the Status of
/// the lowest-index failing chunk is returned (OK when all chunks
/// succeed). Chunk boundaries match ParallelFor exactly, so a chunk that
/// fails identically at any thread count reports the identical Status.
Status ParallelForWithStatus(
    size_t n, size_t grain,
    const std::function<Status(size_t begin, size_t end)>& body);

}  // namespace dbsvec

#endif  // DBSVEC_COMMON_THREAD_POOL_H_
