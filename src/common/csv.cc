#include "common/csv.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "fault/failpoint.h"

namespace dbsvec {

Status WriteCsv(const Dataset& dataset, const std::vector<int32_t>& labels,
                const std::string& path) {
  if (!labels.empty() &&
      static_cast<PointIndex>(labels.size()) != dataset.size()) {
    return Status::InvalidArgument(
        "labels size does not match dataset size writing " + path);
  }
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.precision(17);
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    for (int j = 0; j < dataset.dim(); ++j) {
      if (j > 0) {
        out << ',';
      }
      out << dataset.at(i, j);
    }
    if (!labels.empty()) {
      out << ',' << labels[i];
    }
    out << '\n';
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

Status ReadCsv(const std::string& path, bool last_column_is_label,
               Dataset* dataset, std::vector<int32_t>* labels) {
  DBSVEC_RETURN_IF_ERROR(FailpointCheck("csv.read"));
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  // Deterministic ingest corruption: poison the first coordinate parsed so
  // the finite-value validation below must catch it.
  bool corrupt_next_value = FailpointCorrupt("csv.read");
  std::string line;
  std::vector<double> row;
  int expected_width = -1;
  int line_number = 0;
  std::vector<double> values;
  std::vector<int32_t> parsed_labels;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    row.clear();
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) {
      char* end = nullptr;
      double value = std::strtod(field.c_str(), &end);
      if (end == field.c_str()) {
        return Status::InvalidArgument(
            "non-numeric field '" + field + "' at " + path + " line " +
            std::to_string(line_number));
      }
      if (corrupt_next_value) {
        value = std::numeric_limits<double>::quiet_NaN();
        corrupt_next_value = false;
      }
      if (!std::isfinite(value)) {
        // NaN/Inf coordinates would flow straight into distance
        // computations and poison every comparison downstream; reject at
        // the ingest boundary, naming the offending line.
        return Status::InvalidArgument(
            "non-finite value '" + field + "' at " + path + " line " +
            std::to_string(line_number));
      }
      row.push_back(value);
    }
    if (expected_width < 0) {
      expected_width = static_cast<int>(row.size());
      if (last_column_is_label && expected_width < 2) {
        return Status::InvalidArgument(
            "rows too narrow for a label column: " + path + " line " +
            std::to_string(line_number));
      }
    } else if (static_cast<int>(row.size()) != expected_width) {
      return Status::InvalidArgument(
          "ragged row at " + path + " line " + std::to_string(line_number) +
          ": got " + std::to_string(row.size()) + " fields, expected " +
          std::to_string(expected_width));
    }
    const int coords = last_column_is_label ? expected_width - 1
                                            : expected_width;
    values.insert(values.end(), row.begin(), row.begin() + coords);
    if (last_column_is_label) {
      parsed_labels.push_back(static_cast<int32_t>(row.back()));
    }
  }
  if (expected_width < 0) {
    return Status::InvalidArgument("empty file: " + path);
  }
  const int dim = last_column_is_label ? expected_width - 1 : expected_width;
  *dataset = Dataset(dim, std::move(values));
  if (labels != nullptr) {
    *labels = std::move(parsed_labels);
  }
  return Status::Ok();
}

}  // namespace dbsvec
