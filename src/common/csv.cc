#include "common/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dbsvec {

Status WriteCsv(const Dataset& dataset, const std::vector<int32_t>& labels,
                const std::string& path) {
  if (!labels.empty() &&
      static_cast<PointIndex>(labels.size()) != dataset.size()) {
    return Status::InvalidArgument("labels size does not match dataset size");
  }
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.precision(17);
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    for (int j = 0; j < dataset.dim(); ++j) {
      if (j > 0) {
        out << ',';
      }
      out << dataset.at(i, j);
    }
    if (!labels.empty()) {
      out << ',' << labels[i];
    }
    out << '\n';
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

Status ReadCsv(const std::string& path, bool last_column_is_label,
               Dataset* dataset, std::vector<int32_t>* labels) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  std::vector<double> row;
  int expected_width = -1;
  std::vector<double> values;
  std::vector<int32_t> parsed_labels;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    row.clear();
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) {
      char* end = nullptr;
      const double value = std::strtod(field.c_str(), &end);
      if (end == field.c_str()) {
        return Status::IoError("non-numeric field in " + path + ": " + field);
      }
      row.push_back(value);
    }
    if (expected_width < 0) {
      expected_width = static_cast<int>(row.size());
      if (last_column_is_label && expected_width < 2) {
        return Status::IoError("rows too narrow for a label column: " + path);
      }
    } else if (static_cast<int>(row.size()) != expected_width) {
      return Status::IoError("ragged rows in " + path);
    }
    const int coords = last_column_is_label ? expected_width - 1
                                            : expected_width;
    values.insert(values.end(), row.begin(), row.begin() + coords);
    if (last_column_is_label) {
      parsed_labels.push_back(static_cast<int32_t>(row.back()));
    }
  }
  if (expected_width < 0) {
    return Status::IoError("empty file: " + path);
  }
  const int dim = last_column_is_label ? expected_width - 1 : expected_width;
  *dataset = Dataset(dim, std::move(values));
  if (labels != nullptr) {
    *labels = std::move(parsed_labels);
  }
  return Status::Ok();
}

}  // namespace dbsvec
