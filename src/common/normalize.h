#ifndef DBSVEC_COMMON_NORMALIZE_H_
#define DBSVEC_COMMON_NORMALIZE_H_

#include <span>
#include <vector>

#include "common/dataset.h"

namespace dbsvec {

/// Per-dimension affine map x'_d = x_d * scale[d] + shift[d]. An empty
/// transform is the identity. Persisted inside a DbsvecModel so points
/// assigned after training pass through the exact mapping the training data
/// saw.
struct AffineTransform {
  std::vector<double> scale;
  std::vector<double> shift;

  bool empty() const { return scale.empty(); }
  int dim() const { return static_cast<int>(scale.size()); }

  /// Maps `in` (length dim) into `out` (length dim; may alias `in`).
  void Apply(std::span<const double> in, std::span<double> out) const;

  friend bool operator==(const AffineTransform&,
                         const AffineTransform&) = default;
};

/// Linearly rescales every dimension of `dataset` to [lo, hi], in place.
/// The paper's efficiency experiments normalize coordinates to [0, 1e5] per
/// dimension before clustering (Sec. V-C). Constant dimensions map to `lo`.
void NormalizeToRange(Dataset* dataset, double lo, double hi);

/// As NormalizeToRange, but also returns the applied per-dimension
/// transform so the same mapping can be replayed on points arriving later
/// (model serving). Constant dimensions get scale 0 (they map to `lo`).
AffineTransform NormalizeToRangeWithTransform(Dataset* dataset, double lo,
                                              double hi);

/// Paper default normalization: [0, 1e5] in each dimension.
inline void NormalizeToPaperRange(Dataset* dataset) {
  NormalizeToRange(dataset, 0.0, 1e5);
}

}  // namespace dbsvec

#endif  // DBSVEC_COMMON_NORMALIZE_H_
