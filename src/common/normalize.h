#ifndef DBSVEC_COMMON_NORMALIZE_H_
#define DBSVEC_COMMON_NORMALIZE_H_

#include "common/dataset.h"

namespace dbsvec {

/// Linearly rescales every dimension of `dataset` to [lo, hi], in place.
/// The paper's efficiency experiments normalize coordinates to [0, 1e5] per
/// dimension before clustering (Sec. V-C). Constant dimensions map to `lo`.
void NormalizeToRange(Dataset* dataset, double lo, double hi);

/// Paper default normalization: [0, 1e5] in each dimension.
inline void NormalizeToPaperRange(Dataset* dataset) {
  NormalizeToRange(dataset, 0.0, 1e5);
}

}  // namespace dbsvec

#endif  // DBSVEC_COMMON_NORMALIZE_H_
