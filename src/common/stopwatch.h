#ifndef DBSVEC_COMMON_STOPWATCH_H_
#define DBSVEC_COMMON_STOPWATCH_H_

#include <chrono>

namespace dbsvec {

/// Wall-clock timer used by the benchmark harnesses and the per-run
/// statistics in `Clustering`.
class Stopwatch {
 public:
  /// Starts timing at construction.
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dbsvec

#endif  // DBSVEC_COMMON_STOPWATCH_H_
