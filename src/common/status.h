#ifndef DBSVEC_COMMON_STATUS_H_
#define DBSVEC_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dbsvec {

/// Outcome of a fallible operation. The library does not use exceptions;
/// every operation that can fail returns a `Status` (or a value wrapped in
/// `Result<T>`). Mirrors the Status idiom of RocksDB / absl::Status.
class Status {
 public:
  /// Machine-readable failure category.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIoError,
    kFailedPrecondition,
    kInternal,
    kDeadlineExceeded,   ///< A deadline expired or the run was cancelled.
    kResourceExhausted,  ///< A resource budget (memory, quota) ran out.
    kUnavailable,        ///< Transiently unable to serve (shed load, retry).
    kAlreadyExists,      ///< Create-style conflict (a named resource exists).
  };

  /// Default-constructed Status is OK.
  Status() : code_(Code::kOk) {}

  /// Builds a successful status.
  static Status Ok() { return Status(); }
  /// Builds an error carrying `message`; `message` should name the offending
  /// argument or resource.
  static Status InvalidArgument(std::string message) {
    return Status(Code::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(Code::kNotFound, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(Code::kIoError, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(Code::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(Code::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(Code::kDeadlineExceeded, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(Code::kResourceExhausted, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(Code::kUnavailable, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(Code::kAlreadyExists, std::move(message));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  /// Human-readable description; empty for OK statuses.
  const std::string& message() const { return message_; }
  /// "OK" or "<category>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Code code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define DBSVEC_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::dbsvec::Status status_macro_value_ = (expr);  \
    if (!status_macro_value_.ok()) {                \
      return status_macro_value_;                   \
    }                                               \
  } while (false)

}  // namespace dbsvec

#endif  // DBSVEC_COMMON_STATUS_H_
