#ifndef DBSVEC_COMMON_UNION_FIND_H_
#define DBSVEC_COMMON_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

namespace dbsvec {

/// Disjoint-set forest with path halving and union by size. DBSVEC and the
/// grid-based baselines use it to merge sub-clusters / core cells (Lemma 3:
/// two sub-clusters sharing a core point belong to one cluster).
class UnionFind {
 public:
  /// Creates `n` singleton sets labelled 0..n-1.
  explicit UnionFind(int32_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Creates an empty forest; grow it with MakeSet().
  UnionFind() = default;

  /// Adds one new singleton set and returns its id.
  int32_t MakeSet() {
    const int32_t id = static_cast<int32_t>(parent_.size());
    parent_.push_back(id);
    size_.push_back(1);
    return id;
  }

  /// Representative of `x`'s set.
  int32_t Find(int32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // Path halving.
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets containing `a` and `b`; returns the new root.
  int32_t Union(int32_t a, int32_t b) {
    int32_t ra = Find(a);
    int32_t rb = Find(b);
    if (ra == rb) {
      return ra;
    }
    if (size_[ra] < size_[rb]) {
      std::swap(ra, rb);
    }
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return ra;
  }

  /// True iff `a` and `b` are in the same set.
  bool Connected(int32_t a, int32_t b) { return Find(a) == Find(b); }

  /// Number of elements ever created.
  int32_t size() const { return static_cast<int32_t>(parent_.size()); }

 private:
  std::vector<int32_t> parent_;
  std::vector<int32_t> size_;
};

}  // namespace dbsvec

#endif  // DBSVEC_COMMON_UNION_FIND_H_
