#include "common/thread_pool.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "fault/failpoint.h"

namespace dbsvec {
namespace {

thread_local bool tls_inside_worker = false;
thread_local int tls_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(int num_workers, std::vector<int> pin_cpus)
    : pin_cpus_(std::move(pin_cpus)) {
  workers_.reserve(static_cast<size_t>(std::max(1, num_workers)));
  for (int i = 0; i < std::max(1, num_workers); ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::InsideWorker() { return tls_inside_worker; }

int ThreadPool::WorkerIndex() { return tls_worker_index; }

void ThreadPool::RecordTaskException(int task, std::exception_ptr exception) {
  std::lock_guard<std::mutex> lock(exception_mutex_);
  if (first_exception_task_ < 0 || task < first_exception_task_) {
    first_exception_ = std::move(exception);
    first_exception_task_ = task;
  }
}

void ThreadPool::RunTasks() {
  // Claim task indices off the shared counter until the job is drained.
  // Claim order is irrelevant to correctness: tasks are independent and
  // their results are absorbed by the caller in task order.
  while (true) {
    const int task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= num_tasks_) {
      return;
    }
    try {
      (*task_)(task);
    } catch (...) {
      // Contain the failure: record it, keep draining so sibling tasks
      // finish and the pool stays healthy. Execute rethrows on the caller.
      RecordTaskException(task, std::current_exception());
    }
  }
}

void ThreadPool::WorkerLoop(int worker_index) {
#if defined(__linux__)
  if (!pin_cpus_.empty()) {
    cpu_set_t cpus;
    CPU_ZERO(&cpus);
    CPU_SET(pin_cpus_[static_cast<size_t>(worker_index) % pin_cpus_.size()],
            &cpus);
    // Best effort: an EINVAL/EPERM (offline CPU, restricted cpuset) just
    // leaves this worker on the default mask.
    (void)pthread_setaffinity_np(pthread_self(), sizeof(cpus), &cpus);
  }
#endif
  tls_inside_worker = true;
  tls_worker_index = worker_index;
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock,
                    [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) {
        return;
      }
      seen_epoch = epoch_;
    }
    RunTasks();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_remaining_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::Execute(int num_tasks, const std::function<void(int)>& task) {
  if (num_tasks <= 0) {
    return;
  }
  if (tls_inside_worker) {
    // Nested parallel section: run inline to avoid waiting on workers
    // that may themselves be blocked on this job.
    for (int i = 0; i < num_tasks; ++i) {
      task(i);
    }
    return;
  }
  // One job slot: external submitters take turns. A submitter blocks for
  // its own job's completion regardless, so serializing here changes no
  // semantics for a single caller and makes concurrent callers (server
  // workers running AssignBatch while another thread fits) correct.
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    num_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    workers_remaining_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  {
    std::lock_guard<std::mutex> lock(exception_mutex_);
    first_exception_ = nullptr;
    first_exception_task_ = -1;
  }
  wake_cv_.notify_all();
  // The caller participates as a de-facto worker; mark it so a nested
  // Execute issued from one of its tasks runs inline instead of
  // clobbering the in-flight job. Its worker index is one past the pool
  // workers', giving every participating thread a distinct stable index.
  tls_inside_worker = true;
  tls_worker_index = static_cast<int>(workers_.size());
  RunTasks();
  tls_inside_worker = false;
  tls_worker_index = -1;
  // Every worker must check in before the next epoch may reuse the job
  // slots; this also guarantees all tasks have finished.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return workers_remaining_ == 0; });
    task_ = nullptr;
  }
  std::exception_ptr failure;
  {
    std::lock_guard<std::mutex> lock(exception_mutex_);
    failure = std::exchange(first_exception_, nullptr);
    first_exception_task_ = -1;
  }
  if (failure != nullptr) {
    std::rethrow_exception(failure);
  }
}

void ThreadPool::ExecuteGrouped(
    const std::vector<int>& group_task_counts,
    const std::function<void(int group, int item)>& task) {
  const int num_groups = static_cast<int>(group_task_counts.size());
  if (num_groups <= 0) {
    return;
  }
  if (tls_inside_worker) {
    for (int g = 0; g < num_groups; ++g) {
      for (int item = 0; item < group_task_counts[g]; ++item) {
        task(g, item);
      }
    }
    return;
  }
  // One claim counter per group. Each participating thread drains its home
  // group first, then cycles through the remaining groups; counters only
  // grow, so after a thread has visited every group once no unclaimed item
  // can remain anywhere.
  std::vector<std::atomic<int>> counters(static_cast<size_t>(num_groups));
  Execute(concurrency(), [&](int /*slot*/) {
    const int home = std::max(0, WorkerIndex()) % num_groups;
    for (int step = 0; step < num_groups; ++step) {
      const int g = (home + step) % num_groups;
      std::atomic<int>& counter = counters[static_cast<size_t>(g)];
      while (true) {
        const int item = counter.fetch_add(1, std::memory_order_relaxed);
        if (item >= group_task_counts[static_cast<size_t>(g)]) {
          break;
        }
        task(g, item);
      }
    }
  });
}

Status ThreadPool::ExecuteWithStatus(int num_tasks,
                                     const std::function<Status(int)>& task) {
  if (num_tasks <= 0) {
    return Status::Ok();
  }
  // Per-task Status slots: collecting them all and scanning in index order
  // afterwards makes the reported failure independent of worker
  // scheduling ("first" always means lowest task index).
  std::vector<Status> statuses(static_cast<size_t>(num_tasks));
  Execute(num_tasks, [&](int i) {
    try {
      // The `thread_pool.task` failpoint models a task failing inside the
      // pool itself; checked here so every with-status batch call (kernel
      // materialization, batched assignment) can be failed per task.
      Status injected = FailpointCheck("thread_pool.task");
      statuses[static_cast<size_t>(i)] =
          injected.ok() ? task(i) : std::move(injected);
    } catch (const std::exception& e) {
      statuses[static_cast<size_t>(i)] =
          Status::Internal(std::string("task threw: ") + e.what());
    } catch (...) {
      statuses[static_cast<size_t>(i)] =
          Status::Internal("task threw a non-std exception");
    }
  });
  for (const Status& status : statuses) {
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

namespace {

struct GlobalPoolState {
  std::mutex mutex;
  int requested = 0;  // 0 = hardware concurrency.
  bool current = false;
  std::vector<int> pin_cpus;
  std::unique_ptr<ThreadPool> pool;
};

GlobalPoolState& PoolState() {
  static GlobalPoolState* state = new GlobalPoolState();
  return *state;
}

int ResolveThreads(int requested) {
  if (requested > 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

void SetGlobalThreads(int threads) {
  GlobalPoolState& state = PoolState();
  std::unique_ptr<ThreadPool> retired;
  std::lock_guard<std::mutex> lock(state.mutex);
  state.requested = std::max(0, threads);
  state.current = false;
  retired = std::move(state.pool);  // Joined outside any parallel section.
}

int GlobalThreads() {
  GlobalPoolState& state = PoolState();
  std::lock_guard<std::mutex> lock(state.mutex);
  return ResolveThreads(state.requested);
}

void SetGlobalPinning(std::vector<int> cpus) {
  GlobalPoolState& state = PoolState();
  std::unique_ptr<ThreadPool> retired;
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.pin_cpus == cpus) {
    return;  // Unchanged plan: keep the warm pool.
  }
  state.pin_cpus = std::move(cpus);
  state.current = false;
  retired = std::move(state.pool);  // Joined outside any parallel section.
}

ThreadPool* GlobalThreadPool() {
  GlobalPoolState& state = PoolState();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.current) {
    const int threads = ResolveThreads(state.requested);
    state.pool.reset();
    if (threads > 1) {
      state.pool = std::make_unique<ThreadPool>(threads - 1, state.pin_cpus);
    }
    state.current = true;
  }
  return state.pool.get();
}

size_t ParallelChunks(size_t n, size_t grain) {
  ThreadPool* pool = GlobalThreadPool();
  if (pool == nullptr || ThreadPool::InsideWorker() || n == 0) {
    return 1;
  }
  const size_t min_chunk = std::max<size_t>(1, grain);
  const size_t by_grain = (n + min_chunk - 1) / min_chunk;
  return std::max<size_t>(
      1, std::min(by_grain, static_cast<size_t>(pool->concurrency())));
}

void ParallelForChunked(
    size_t n, size_t grain,
    const std::function<void(size_t chunk, size_t begin, size_t end)>& body) {
  if (n == 0) {
    return;
  }
  const size_t chunks = ParallelChunks(n, grain);
  if (chunks <= 1) {
    body(0, 0, n);
    return;
  }
  const size_t chunk_size = (n + chunks - 1) / chunks;
  GlobalThreadPool()->Execute(
      static_cast<int>(chunks), [&](int chunk) {
        const size_t begin = static_cast<size_t>(chunk) * chunk_size;
        const size_t end = std::min(n, begin + chunk_size);
        if (begin < end) {
          body(static_cast<size_t>(chunk), begin, end);
        }
      });
}

void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t begin, size_t end)>& body) {
  ParallelForChunked(
      n, grain,
      [&body](size_t /*chunk*/, size_t begin, size_t end) {
        body(begin, end);
      });
}

Status ParallelForWithStatus(
    size_t n, size_t grain,
    const std::function<Status(size_t begin, size_t end)>& body) {
  if (n == 0) {
    return Status::Ok();
  }
  const size_t chunks = ParallelChunks(n, grain);
  if (chunks <= 1) {
    // Keep the failure surface identical at every thread count: the
    // single-chunk path honors the per-task failpoint too.
    DBSVEC_RETURN_IF_ERROR(FailpointCheck("thread_pool.task"));
    return body(0, n);
  }
  const size_t chunk_size = (n + chunks - 1) / chunks;
  return GlobalThreadPool()->ExecuteWithStatus(
      static_cast<int>(chunks), [&](int chunk) {
        const size_t begin = static_cast<size_t>(chunk) * chunk_size;
        const size_t end = std::min(n, begin + chunk_size);
        return begin < end ? body(begin, end) : Status::Ok();
      });
}

}  // namespace dbsvec
