#include "common/dataset.h"

#include <cassert>
#include <cmath>
#include <string>

#include "simd/distance.h"

namespace dbsvec {

Dataset::Dataset(int dim, std::vector<double> values)
    : dim_(dim), data_(std::move(values)) {
  assert(dim_ > 0);
  assert(data_.size() % static_cast<size_t>(dim_) == 0);
  num_points_ = data_.size() / static_cast<size_t>(dim_);
}

void Dataset::Append(std::span<const double> coords) {
  assert(static_cast<int>(coords.size()) == dim_);
  data_.insert(data_.end(), coords.begin(), coords.end());
  ++num_points_;
}

double Dataset::SquaredDistance(PointIndex i, PointIndex j) const {
  const double* a = data_.data() + static_cast<size_t>(i) * dim_;
  const double* b = data_.data() + static_cast<size_t>(j) * dim_;
  return simd::SquaredDistance(a, b, static_cast<size_t>(dim_));
}

double Dataset::SquaredDistanceTo(PointIndex i,
                                  std::span<const double> q) const {
  const double* a = data_.data() + static_cast<size_t>(i) * dim_;
  return simd::SquaredDistance(a, q.data(), static_cast<size_t>(dim_));
}

Status ValidateFinite(const Dataset& dataset) {
  const std::vector<double>& data = dataset.data();
  for (size_t k = 0; k < data.size(); ++k) {
    if (!std::isfinite(data[k])) {
      const size_t dim = static_cast<size_t>(dataset.dim());
      return Status::InvalidArgument(
          "non-finite coordinate at point " + std::to_string(k / dim) +
          ", dim " + std::to_string(k % dim));
    }
  }
  return Status::Ok();
}

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  return simd::SquaredDistance(a, b);
}

}  // namespace dbsvec
