#ifndef DBSVEC_COMMON_DATASET_H_
#define DBSVEC_COMMON_DATASET_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace dbsvec {

/// Index of a point within a Dataset.
using PointIndex = int32_t;

/// An immutable-size, row-major collection of `n` points in `d`-dimensional
/// Euclidean space. The single point container shared by every index,
/// clusterer and metric in the library.
///
/// Points are addressed by their `PointIndex` (0-based row number); cluster
/// labels produced by the clusterers are parallel arrays indexed the same
/// way.
class Dataset {
 public:
  /// Creates an empty dataset of dimensionality `dim` (rows appended later
  /// via Append).
  explicit Dataset(int dim) : dim_(dim) {}

  /// Adopts a flat row-major buffer of `values.size() / dim` points.
  /// `values.size()` must be a multiple of `dim`.
  Dataset(int dim, std::vector<double> values);

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  /// Number of points.
  PointIndex size() const { return static_cast<PointIndex>(num_points_); }
  /// Dimensionality d.
  int dim() const { return dim_; }
  bool empty() const { return num_points_ == 0; }

  /// Read-only view of point `i`'s coordinates (length d).
  std::span<const double> point(PointIndex i) const {
    return {data_.data() + static_cast<size_t>(i) * dim_,
            static_cast<size_t>(dim_)};
  }

  /// Coordinate `j` of point `i`.
  double at(PointIndex i, int j) const {
    return data_[static_cast<size_t>(i) * dim_ + j];
  }

  /// Mutable coordinate access (used by generators and normalizers).
  double& at(PointIndex i, int j) {
    return data_[static_cast<size_t>(i) * dim_ + j];
  }

  /// Appends one point; `coords` must have length d.
  void Append(std::span<const double> coords);

  /// Pre-allocates capacity for `n` points.
  void Reserve(PointIndex n) {
    data_.reserve(static_cast<size_t>(n) * dim_);
  }

  /// Raw row-major buffer (n*d doubles).
  const std::vector<double>& data() const { return data_; }

  /// Squared Euclidean distance between points `i` and `j` of this dataset.
  double SquaredDistance(PointIndex i, PointIndex j) const;

  /// Squared Euclidean distance between point `i` and an external query
  /// point `q` (length d).
  double SquaredDistanceTo(PointIndex i, std::span<const double> q) const;

  /// Euclidean distance between points `i` and `j`.
  double Distance(PointIndex i, PointIndex j) const {
    return std::sqrt(SquaredDistance(i, j));
  }

 private:
  int dim_;
  size_t num_points_ = 0;
  std::vector<double> data_;
};

/// OK iff every coordinate of `dataset` is finite; otherwise
/// InvalidArgument naming the first offending point and dimension. The
/// clustering entry points run this on ingest so a NaN/Inf coordinate
/// (which would poison every distance comparison) fails fast instead of
/// silently degrading the output.
Status ValidateFinite(const Dataset& dataset);

/// Squared Euclidean distance between two coordinate vectors of equal
/// length.
double SquaredDistance(std::span<const double> a, std::span<const double> b);

/// Euclidean distance between two coordinate vectors of equal length.
inline double Distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace dbsvec

#endif  // DBSVEC_COMMON_DATASET_H_
