#include "common/normalize.h"

#include <limits>
#include <vector>

namespace dbsvec {

void AffineTransform::Apply(std::span<const double> in,
                            std::span<double> out) const {
  for (size_t d = 0; d < in.size(); ++d) {
    out[d] = in[d] * scale[d] + shift[d];
  }
}

AffineTransform NormalizeToRangeWithTransform(Dataset* dataset, double lo,
                                              double hi) {
  AffineTransform transform;
  if (dataset->empty()) {
    return transform;
  }
  const int dim = dataset->dim();
  std::vector<double> min_coord(dim, std::numeric_limits<double>::infinity());
  std::vector<double> max_coord(dim, -std::numeric_limits<double>::infinity());
  for (PointIndex i = 0; i < dataset->size(); ++i) {
    for (int j = 0; j < dim; ++j) {
      const double v = dataset->at(i, j);
      if (v < min_coord[j]) min_coord[j] = v;
      if (v > max_coord[j]) max_coord[j] = v;
    }
  }
  // x' = (x - min) * (hi - lo)/span + lo = x * scale + shift with
  // scale = (hi - lo)/span and shift = lo - min * scale. Constant
  // dimensions use scale 0 and shift `lo` (every value maps exactly there).
  transform.scale.resize(dim);
  transform.shift.resize(dim);
  for (int j = 0; j < dim; ++j) {
    const double span = max_coord[j] - min_coord[j];
    if (span > 0.0) {
      const double scale = (hi - lo) / span;
      transform.scale[j] = scale;
      transform.shift[j] = lo - min_coord[j] * scale;
    } else {
      transform.scale[j] = 0.0;
      transform.shift[j] = lo;
    }
  }
  std::vector<double> row(dim);
  for (PointIndex i = 0; i < dataset->size(); ++i) {
    for (int j = 0; j < dim; ++j) {
      row[j] = dataset->at(i, j);
    }
    transform.Apply(row, row);
    for (int j = 0; j < dim; ++j) {
      dataset->at(i, j) = row[j];
    }
  }
  return transform;
}

void NormalizeToRange(Dataset* dataset, double lo, double hi) {
  NormalizeToRangeWithTransform(dataset, lo, hi);
}

}  // namespace dbsvec
