#include "common/normalize.h"

#include <limits>
#include <vector>

namespace dbsvec {

void NormalizeToRange(Dataset* dataset, double lo, double hi) {
  if (dataset->empty()) {
    return;
  }
  const int dim = dataset->dim();
  std::vector<double> min_coord(dim, std::numeric_limits<double>::infinity());
  std::vector<double> max_coord(dim, -std::numeric_limits<double>::infinity());
  for (PointIndex i = 0; i < dataset->size(); ++i) {
    for (int j = 0; j < dim; ++j) {
      const double v = dataset->at(i, j);
      if (v < min_coord[j]) min_coord[j] = v;
      if (v > max_coord[j]) max_coord[j] = v;
    }
  }
  for (PointIndex i = 0; i < dataset->size(); ++i) {
    for (int j = 0; j < dim; ++j) {
      const double span = max_coord[j] - min_coord[j];
      double& v = dataset->at(i, j);
      v = span > 0.0 ? lo + (hi - lo) * (v - min_coord[j]) / span : lo;
    }
  }
}

}  // namespace dbsvec
