#include "common/status.h"

namespace dbsvec {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dbsvec
