#ifndef DBSVEC_COMMON_DEADLINE_H_
#define DBSVEC_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace dbsvec {

/// Shared cooperative cancellation flag. Copies alias the same flag, so a
/// caller can hand a Deadline to a long run, keep a copy, and cancel from
/// another thread; the run observes it at its next check point.
class CancelFlag {
 public:
  CancelFlag() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  friend class Deadline;
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// A cooperative time budget plus optional cancellation, threaded through
/// the long-running entry points (RunDbsvec, index builds, AssignmentEngine
/// batches). Cheap to copy and to check; the default-constructed Deadline
/// never expires and holds no allocation, so existing call sites pay one
/// branch per check point.
///
/// Expiry and cancellation both surface as Status::DeadlineExceeded — the
/// caller asked the run to stop, and partial statistics are still filled in
/// (see the individual entry points for what "partial" means there).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires, cannot be cancelled.
  Deadline() = default;

  /// Expires `seconds` from now (<= 0 means already expired).
  static Deadline After(double seconds) {
    Deadline d;
    d.has_time_limit_ = true;
    d.expires_at_ =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline AfterMillis(int64_t ms) {
    return After(static_cast<double>(ms) / 1000.0);
  }

  /// Never expires by time, but honors `flag` — the pure-cancellation form.
  static Deadline Cancellable(const CancelFlag& flag) {
    return Deadline().WithCancel(flag);
  }

  /// Attaches a cancellation flag to this deadline (time limit retained).
  Deadline WithCancel(const CancelFlag& flag) const {
    Deadline d = *this;
    d.cancel_ = flag.flag_;
    return d;
  }

  /// True when no time limit and no cancel flag are attached.
  bool unlimited() const {
    return !has_time_limit_ && cancel_ == nullptr;
  }

  /// True once the time budget has run out or cancellation was requested.
  bool Expired() const {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return true;
    }
    return has_time_limit_ && Clock::now() >= expires_at_;
  }

  /// OK while live; Status::DeadlineExceeded naming `what` once expired or
  /// cancelled. The standard check-point call:
  ///   DBSVEC_RETURN_IF_ERROR(deadline.Check("dbsvec fit"));
  Status Check(std::string_view what) const {
    if (!Expired()) {
      return Status::Ok();
    }
    const bool cancelled =
        cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
    return Status::DeadlineExceeded(
        std::string(what) +
        (cancelled ? ": cancelled" : ": deadline exceeded"));
  }

 private:
  bool has_time_limit_ = false;
  Clock::time_point expires_at_{};
  std::shared_ptr<const std::atomic<bool>> cancel_;
};

}  // namespace dbsvec

#endif  // DBSVEC_COMMON_DEADLINE_H_
