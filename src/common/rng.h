#ifndef DBSVEC_COMMON_RNG_H_
#define DBSVEC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace dbsvec {

/// Deterministic, seedable pseudo-random generator (xoshiro256** seeded via
/// splitmix64). Used by all data generators, LSH, and k-means++ so that
/// every experiment in the repository is reproducible from a fixed seed.
class Rng {
 public:
  /// Seeds the stream; equal seeds give equal streams on every platform.
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the 4-word xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBounded(uint64_t n) {
    // Lemire's multiply-shift rejection method.
    uint64_t x = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < n) {
      const uint64_t threshold = (0 - n) % n;
      while (low < threshold) {
        x = NextUint64();
        m = static_cast<__uint128_t>(x) * n;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = NextDouble();
    while (u1 <= 1e-300) {
      u1 = NextDouble();
    }
    const double u2 = NextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * kPi * u2;
    cached_gaussian_ = radius * std::sin(angle);
    has_cached_gaussian_ = true;
    return radius * std::cos(angle);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

 private:
  static constexpr double kPi = 3.14159265358979323846;

  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace dbsvec

#endif  // DBSVEC_COMMON_RNG_H_
