#ifndef DBSVEC_COMMON_CSV_H_
#define DBSVEC_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"

namespace dbsvec {

/// Writes `dataset` to `path` as plain CSV, one point per row. If `labels`
/// is non-empty it must have dataset.size() entries and is appended as the
/// last column (cluster id, -1 for noise).
Status WriteCsv(const Dataset& dataset, const std::vector<int32_t>& labels,
                const std::string& path);

/// Reads a headerless numeric CSV into a Dataset. When `last_column_is_label`
/// is true the final column is split off into `*labels` (may be nullptr to
/// discard). Rows must all have the same width.
Status ReadCsv(const std::string& path, bool last_column_is_label,
               Dataset* dataset, std::vector<int32_t>* labels);

}  // namespace dbsvec

#endif  // DBSVEC_COMMON_CSV_H_
