#include "index/lsh_index.h"

#include <cmath>

#include "common/rng.h"

namespace dbsvec {

LshIndex::LshIndex(const Dataset& dataset, double epsilon_hint,
                   const LshParams& params)
    : NeighborIndex(dataset),
      bucket_width_(params.bucket_width_factor * epsilon_hint) {
  Rng rng(params.seed);
  const int dim = dataset.dim();
  tables_.resize(params.num_tables);
  for (Table& table : tables_) {
    table.directions.resize(params.num_projections);
    table.offsets.resize(params.num_projections);
    for (int p = 0; p < params.num_projections; ++p) {
      table.directions[p].resize(dim);
      for (int j = 0; j < dim; ++j) {
        table.directions[p][j] = rng.NextGaussian();
      }
      table.offsets[p] = rng.Uniform(0.0, bucket_width_);
    }
    for (PointIndex i = 0; i < dataset.size(); ++i) {
      table.buckets[HashKey(table, dataset.point(i))].push_back(i);
    }
  }
  visit_mark_.assign(dataset.size(), 0);
}

std::vector<int32_t> LshIndex::HashKey(const Table& table,
                                       std::span<const double> p) const {
  std::vector<int32_t> key(table.directions.size());
  for (size_t h = 0; h < table.directions.size(); ++h) {
    double dot = table.offsets[h];
    const std::vector<double>& a = table.directions[h];
    for (size_t j = 0; j < p.size(); ++j) {
      dot += a[j] * p[j];
    }
    key[h] = static_cast<int32_t>(std::floor(dot / bucket_width_));
  }
  return key;
}

void LshIndex::RangeQuery(std::span<const double> query, double epsilon,
                          std::vector<PointIndex>* out) const {
  out->clear();
  CountRangeQuery();
  const double eps_sq = epsilon * epsilon;
  ++visit_epoch_;
  for (const Table& table : tables_) {
    const auto it = table.buckets.find(HashKey(table, query));
    if (it == table.buckets.end()) {
      continue;
    }
    for (const PointIndex i : it->second) {
      if (visit_mark_[i] == visit_epoch_) {
        continue;  // Already considered via an earlier table.
      }
      visit_mark_[i] = visit_epoch_;
      CountDistanceComputations(1);
      if (dataset_.SquaredDistanceTo(i, query) <= eps_sq) {
        out->push_back(i);
      }
    }
  }
}

}  // namespace dbsvec
