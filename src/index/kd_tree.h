#ifndef DBSVEC_INDEX_KD_TREE_H_
#define DBSVEC_INDEX_KD_TREE_H_

#include <span>
#include <vector>

#include "index/neighbor_index.h"
#include "simd/soa_block.h"

namespace dbsvec {

/// Bulk-loaded kd-tree [Bentley 1975] over a static dataset.
///
/// Built once by recursive median splits on the widest-spread dimension
/// (O(n log n)); leaves hold up to `kLeafSize` points. Range queries prune
/// subtrees by bounding-box distance and scan leaves linearly. This is the
/// engine behind the paper's kd-DBSCAN baseline and the default query
/// engine for every clusterer in this library.
class KdTree final : public NeighborIndex {
 public:
  explicit KdTree(const Dataset& dataset);

  void RangeQuery(std::span<const double> query, double epsilon,
                  std::vector<PointIndex>* out) const override;
  void RangeQueryWithDistances(std::span<const double> query, double epsilon,
                               std::vector<PointIndex>* out,
                               std::vector<double>* dist_sq) const override;
  PointIndex RangeCount(std::span<const double> query,
                        double epsilon) const override;

  /// k-nearest-neighbor query: fills `*out` with up to `k` (distance,
  /// index) pairs sorted by ascending distance. A dataset point at the
  /// query location is included (distance 0). Subtrees are pruned by
  /// bounding-box distance against the current k-th best.
  void KnnQuery(std::span<const double> query, int k,
                std::vector<std::pair<double, PointIndex>>* out) const;

 private:
  static constexpr int kLeafSize = 24;
  /// Below this many points the build stays sequential (forking overhead
  /// would dominate).
  static constexpr PointIndex kParallelBuildCutoff = 4096;

  struct Node {
    // Interval [begin, end) into order_.
    PointIndex begin = 0;
    PointIndex end = 0;
    int split_dim = -1;       // -1 marks a leaf.
    double split_value = 0.0;
    int32_t left = -1;        // Child indices into nodes_.
    int32_t right = -1;
    std::vector<double> bbox_min;  // Axis-aligned bounding box of subtree.
    std::vector<double> bbox_max;
  };

  /// A subtree deferred for parallel construction: `node` (in nodes_) has
  /// its range and bbox set but is still unsplit.
  struct SubtreeJob {
    int32_t node = -1;
    PointIndex begin = 0;
    PointIndex end = 0;
  };

  /// Recursively builds order_[begin, end) into `*nodes`, returning the
  /// subtree root id (an index into `*nodes`). While `fork_depth` > 0 the
  /// recursion descends sequentially; at depth 0 (and only when `jobs` is
  /// non-null) splittable nodes are recorded as SubtreeJobs instead of
  /// being expanded, to be built concurrently into per-job arenas and
  /// spliced back in job order. The resulting topology, bounding boxes and
  /// `order_` permutation are identical to a fully sequential build (only
  /// internal node numbering differs), so query results and instrumentation
  /// do not depend on the thread count.
  int32_t Build(PointIndex begin, PointIndex end, int fork_depth,
                std::vector<Node>* nodes, std::vector<SubtreeJob>* jobs);
  void BuildParallel(PointIndex n);
  double BboxSquaredDistance(const Node& node,
                             std::span<const double> query) const;
  /// Recursive range traversal; leaves are scanned as SoA blocks and the
  /// visitor receives (point index, squared distance) for every hit.
  template <typename Visitor>
  void Visit(int32_t node_id, std::span<const double> query, double eps_sq,
             Visitor&& visit) const;
  /// Counting-only traversal: leaves go through the batched
  /// CountWithinEps primitive, never materializing distances.
  PointIndex CountVisit(int32_t node_id, std::span<const double> query,
                        double eps_sq) const;

  std::vector<PointIndex> order_;  // Permutation of 0..n-1 grouped by leaf.
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  /// SoA copy of the dataset permuted by order_, so every leaf's interval
  /// [begin, end) is a contiguous position range for the batched kernels.
  simd::SoaBlockView view_;
};

}  // namespace dbsvec

#endif  // DBSVEC_INDEX_KD_TREE_H_
