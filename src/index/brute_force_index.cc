#include "index/brute_force_index.h"

#include <algorithm>

namespace dbsvec {

template <typename Visitor>
void BruteForceIndex::Scan(std::span<const double> query, double eps_sq,
                           Visitor&& visit) const {
  const size_t n = view_.size();
  simd::ScratchLease scratch(std::min(n, kScanChunk));
  double* d2 = scratch.data();
  for (size_t begin = 0; begin < n; begin += kScanChunk) {
    const size_t end = std::min(n, begin + kScanChunk);
    view_.SquaredDistances(query, begin, end, d2);
    for (size_t i = begin; i < end; ++i) {
      const double dist_sq = d2[i - begin];
      if (dist_sq <= eps_sq) {
        visit(static_cast<PointIndex>(i), dist_sq);
      }
    }
  }
}

void BruteForceIndex::RangeQuery(std::span<const double> query,
                                 double epsilon,
                                 std::vector<PointIndex>* out) const {
  out->clear();
  CountRangeQuery();
  CountDistanceComputations(static_cast<uint64_t>(dataset_.size()));
  Scan(query, epsilon * epsilon,
       [out](PointIndex i, double) { out->push_back(i); });
}

void BruteForceIndex::RangeQueryWithDistances(
    std::span<const double> query, double epsilon,
    std::vector<PointIndex>* out, std::vector<double>* dist_sq) const {
  out->clear();
  dist_sq->clear();
  CountRangeQuery();
  CountDistanceComputations(static_cast<uint64_t>(dataset_.size()));
  Scan(query, epsilon * epsilon, [out, dist_sq](PointIndex i, double d2) {
    out->push_back(i);
    dist_sq->push_back(d2);
  });
}

PointIndex BruteForceIndex::RangeCount(std::span<const double> query,
                                       double epsilon) const {
  CountRangeQuery();
  CountDistanceComputations(static_cast<uint64_t>(dataset_.size()));
  return static_cast<PointIndex>(
      view_.CountWithin(query, 0, view_.size(), epsilon * epsilon));
}

}  // namespace dbsvec
