#include "index/brute_force_index.h"

namespace dbsvec {

void BruteForceIndex::RangeQuery(std::span<const double> query,
                                 double epsilon,
                                 std::vector<PointIndex>* out) const {
  out->clear();
  CountRangeQuery();
  const double eps_sq = epsilon * epsilon;
  const PointIndex n = dataset_.size();
  CountDistanceComputations(static_cast<uint64_t>(n));
  for (PointIndex i = 0; i < n; ++i) {
    if (dataset_.SquaredDistanceTo(i, query) <= eps_sq) {
      out->push_back(i);
    }
  }
}

PointIndex BruteForceIndex::RangeCount(std::span<const double> query,
                                       double epsilon) const {
  CountRangeQuery();
  const double eps_sq = epsilon * epsilon;
  const PointIndex n = dataset_.size();
  CountDistanceComputations(static_cast<uint64_t>(n));
  PointIndex count = 0;
  for (PointIndex i = 0; i < n; ++i) {
    if (dataset_.SquaredDistanceTo(i, query) <= eps_sq) {
      ++count;
    }
  }
  return count;
}

}  // namespace dbsvec
