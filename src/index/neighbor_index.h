#ifndef DBSVEC_INDEX_NEIGHBOR_INDEX_H_
#define DBSVEC_INDEX_NEIGHBOR_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/dataset.h"
#include "common/deadline.h"
#include "common/status.h"

namespace dbsvec {

/// Range-query engines available to the clusterers.
enum class IndexType {
  kBruteForce,  ///< Linear scan (the engine assumed by the DBSVEC paper).
  kKdTree,      ///< Bulk-loaded kd-tree (kd-DBSCAN baseline).
  kRStarTree,   ///< STR-packed R*-tree (R-DBSCAN baseline).
  kGrid,        ///< Uniform hash grid keyed to a fixed radius.
};

/// Abstract ε-range-query engine over a fixed `Dataset`.
///
/// All of the clustering algorithms in this library (DBSCAN, DBSVEC,
/// NQ-DBSCAN, ...) are written against this interface, so the index is a
/// swappable component exactly as in the paper's experimental setup
/// (R-DBSCAN vs kd-DBSCAN differ only in this object).
///
/// Implementations also keep instrumentation counters (number of range
/// queries served, number of point-to-point distance evaluations) that the
/// complexity benchmarks (Table II) read back.
///
/// Thread safety: the static engines (brute-force, kd-tree, R*-tree, grid)
/// answer concurrent `RangeQuery`/`RangeCount` calls safely — traversal
/// state lives on the stack and the counters are atomic. LshIndex keeps
/// mutable per-query scratch and DynamicRStarTree supports insertion, so
/// neither may be queried concurrently.
class NeighborIndex {
 public:
  /// A pair of instrumentation counters matching the index's own.
  struct QueryCounters {
    uint64_t range_queries = 0;
    uint64_t distance_computations = 0;
  };

  /// RAII diversion of this thread's counter increments into `*local`
  /// instead of the index totals. Speculative parallel prefetches use this
  /// to issue queries whose cost is folded into the index (via
  /// `AccumulateCounters`) only if the result is actually consumed, keeping
  /// the reported stats identical to a sequential run that never issued the
  /// discarded queries.
  class ScopedCounterCapture {
   public:
    explicit ScopedCounterCapture(QueryCounters* local)
        : previous_(CaptureSlot()) {
      CaptureSlot() = local;
    }
    ~ScopedCounterCapture() { CaptureSlot() = previous_; }

    ScopedCounterCapture(const ScopedCounterCapture&) = delete;
    ScopedCounterCapture& operator=(const ScopedCounterCapture&) = delete;

   private:
    QueryCounters* previous_;
  };

  virtual ~NeighborIndex() = default;

  NeighborIndex(const NeighborIndex&) = delete;
  NeighborIndex& operator=(const NeighborIndex&) = delete;

  /// Appends to `*out` the indices of every dataset point within Euclidean
  /// distance `epsilon` of `query` (inclusive). `*out` is cleared first.
  /// Order of results is implementation-defined.
  virtual void RangeQuery(std::span<const double> query, double epsilon,
                          std::vector<PointIndex>* out) const = 0;

  /// Range query centered on dataset point `i` (the point itself is
  /// included in the result, matching Definition 1 of the paper).
  void RangeQuery(PointIndex i, double epsilon,
                  std::vector<PointIndex>* out) const {
    RangeQuery(dataset_.point(i), epsilon, out);
  }

  /// Like RangeQuery, but also returns each result's squared distance to
  /// the query in `*dist_sq` (parallel to `*out`; both cleared first). The
  /// batched engines fill the distances from the leaf-scan batch they
  /// already computed, so serving-time consumers (nearest-core lookup in
  /// AssignmentEngine) avoid a second distance pass. The default
  /// implementation recomputes them after a plain RangeQuery.
  virtual void RangeQueryWithDistances(std::span<const double> query,
                                       double epsilon,
                                       std::vector<PointIndex>* out,
                                       std::vector<double>* dist_sq) const;

  /// Number of points within `epsilon` of `query`. The default
  /// implementation materializes the result set; subclasses may override
  /// with a counting-only traversal.
  virtual PointIndex RangeCount(std::span<const double> query,
                                double epsilon) const;

  /// Answers one range query per entry of `queries` (each a dataset point
  /// index, matching RangeQuery(PointIndex, ...)), filling
  /// `(*results)[k]` for query k. `*results` is resized; per-query result
  /// order matches RangeQuery. The default implementation fans the
  /// independent queries across the global thread pool; the sharded engine
  /// overrides it with shard-affine routing and can surface merge-stage
  /// failures, hence the Status return. Results are keyed by query
  /// position, so output is deterministic at any thread count.
  virtual Status RangeQueryBatch(std::span<const PointIndex> queries,
                                 double epsilon,
                                 std::vector<std::vector<PointIndex>>* results)
      const;

  /// The indexed dataset.
  const Dataset& dataset() const { return dataset_; }

  /// Instrumentation: range queries served so far.
  uint64_t num_range_queries() const {
    return num_range_queries_.load(std::memory_order_relaxed);
  }
  /// Instrumentation: point-distance evaluations performed so far.
  uint64_t num_distance_computations() const {
    return num_distance_computations_.load(std::memory_order_relaxed);
  }
  /// Resets both instrumentation counters.
  void ResetCounters() const {
    num_range_queries_.store(0, std::memory_order_relaxed);
    num_distance_computations_.store(0, std::memory_order_relaxed);
  }
  /// Folds captured counters into the index totals (see
  /// ScopedCounterCapture).
  void AccumulateCounters(const QueryCounters& counters) const {
    num_range_queries_.fetch_add(counters.range_queries,
                                 std::memory_order_relaxed);
    num_distance_computations_.fetch_add(counters.distance_computations,
                                         std::memory_order_relaxed);
  }

 protected:
  explicit NeighborIndex(const Dataset& dataset) : dataset_(dataset) {}

  /// Counter bumps used by implementations; honor an active capture on the
  /// calling thread, otherwise hit the shared atomics.
  void CountRangeQuery() const {
    QueryCounters* capture = CaptureSlot();
    if (capture != nullptr) {
      ++capture->range_queries;
    } else {
      num_range_queries_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void CountDistanceComputations(uint64_t count) const {
    QueryCounters* capture = CaptureSlot();
    if (capture != nullptr) {
      capture->distance_computations += count;
    } else {
      num_distance_computations_.fetch_add(count,
                                           std::memory_order_relaxed);
    }
  }

  const Dataset& dataset_;
  mutable std::atomic<uint64_t> num_range_queries_{0};
  mutable std::atomic<uint64_t> num_distance_computations_{0};

 private:
  /// The calling thread's active capture slot. A function-local
  /// thread_local (rather than a class-static member) so the slot is
  /// reached through the inline function's guaranteed-initialized local,
  /// not a cross-TU TLS wrapper — the wrapper path trips UBSan's null
  /// checks on some toolchains.
  static QueryCounters*& CaptureSlot() {
    static thread_local QueryCounters* capture = nullptr;
    return capture;
  }
};

/// Builds an index of the requested type over `dataset`. `epsilon_hint` is
/// required by the grid index (its cell width) and ignored by the others.
/// The dataset must outlive the returned index.
std::unique_ptr<NeighborIndex> CreateIndex(IndexType type,
                                           const Dataset& dataset,
                                           double epsilon_hint = 0.0);

/// Fallible variant of CreateIndex: honors `deadline` (checked before and
/// after the build — bulk loads are not interruptible mid-flight) and the
/// `index.build` failpoint. On success `*out` holds the index; on error
/// `*out` is reset to null.
Status CreateIndexChecked(IndexType type, const Dataset& dataset,
                          double epsilon_hint, const Deadline& deadline,
                          std::unique_ptr<NeighborIndex>* out);

/// Human-readable index name ("kd-tree", "R*-tree", ...).
const char* IndexTypeName(IndexType type);

}  // namespace dbsvec

#endif  // DBSVEC_INDEX_NEIGHBOR_INDEX_H_
