#ifndef DBSVEC_INDEX_BRUTE_FORCE_INDEX_H_
#define DBSVEC_INDEX_BRUTE_FORCE_INDEX_H_

#include <span>
#include <vector>

#include "index/neighbor_index.h"

namespace dbsvec {

/// Linear-scan range queries: O(n·d) per query, zero build cost, no extra
/// memory. This is the engine the DBSVEC paper assumes for its own
/// algorithm ("the O(n) factor in our cost is for performing range
/// queries", Sec. III-D) and the reference implementation every other index
/// is tested against.
class BruteForceIndex final : public NeighborIndex {
 public:
  explicit BruteForceIndex(const Dataset& dataset)
      : NeighborIndex(dataset) {}

  void RangeQuery(std::span<const double> query, double epsilon,
                  std::vector<PointIndex>* out) const override;
  PointIndex RangeCount(std::span<const double> query,
                        double epsilon) const override;
};

}  // namespace dbsvec

#endif  // DBSVEC_INDEX_BRUTE_FORCE_INDEX_H_
