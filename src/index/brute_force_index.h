#ifndef DBSVEC_INDEX_BRUTE_FORCE_INDEX_H_
#define DBSVEC_INDEX_BRUTE_FORCE_INDEX_H_

#include <span>
#include <vector>

#include "index/neighbor_index.h"
#include "simd/soa_block.h"

namespace dbsvec {

/// Linear-scan range queries: O(n·d) per query, zero build cost. This is
/// the engine the DBSVEC paper assumes for its own algorithm ("the O(n)
/// factor in our cost is for performing range queries", Sec. III-D) and the
/// reference implementation every other index is tested against.
///
/// The scan runs over a structure-of-arrays copy of the dataset through the
/// batched SIMD distance primitives (one extra n*d-double copy — the only
/// memory this index takes beyond the dataset itself).
class BruteForceIndex final : public NeighborIndex {
 public:
  explicit BruteForceIndex(const Dataset& dataset)
      : NeighborIndex(dataset), view_(dataset) {}

  void RangeQuery(std::span<const double> query, double epsilon,
                  std::vector<PointIndex>* out) const override;
  void RangeQueryWithDistances(std::span<const double> query, double epsilon,
                               std::vector<PointIndex>* out,
                               std::vector<double>* dist_sq) const override;
  PointIndex RangeCount(std::span<const double> query,
                        double epsilon) const override;

 private:
  /// Positions scanned per batch: bounds the distance scratch buffer so the
  /// scan stays cache-resident on large datasets.
  static constexpr size_t kScanChunk = 1024;

  template <typename Visitor>
  void Scan(std::span<const double> query, double eps_sq,
            Visitor&& visit) const;

  simd::SoaBlockView view_;  // Identity order: position i = point i.
};

}  // namespace dbsvec

#endif  // DBSVEC_INDEX_BRUTE_FORCE_INDEX_H_
