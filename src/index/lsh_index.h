#ifndef DBSVEC_INDEX_LSH_INDEX_H_
#define DBSVEC_INDEX_LSH_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "index/neighbor_index.h"

namespace dbsvec {

/// Parameters for the p-stable LSH index.
struct LshParams {
  /// Number of hash tables; the paper's DBSCAN-LSH baseline uses eight
  /// p-stable hashing functions [11].
  int num_tables = 8;
  /// Projections concatenated per table (k of Datar et al.). Two
  /// projections reproduce the accuracy profile the paper reports for
  /// DBSCAN-LSH (near-perfect on compact high-d clusters, clearly lossy
  /// on thin 2-D structures like the map and chameleon datasets).
  int num_projections = 2;
  /// Bucket width as a multiple of the query radius epsilon.
  double bucket_width_factor = 1.0;
  /// RNG seed for the random projections.
  uint64_t seed = 0x5f3759df;
};

/// Locality-sensitive hashing index with 2-stable (Gaussian) projections
/// [Datar et al. 2004]: h(x) = floor((a·x + b) / w). Range queries return
/// the *verified subset* of true neighbors that collide with the query in
/// at least one table — i.e., results are approximate (may miss neighbors)
/// but never contain false positives. This is the substrate of the
/// DBSCAN-LSH baseline [Li, Heinis, Luk 2016].
class LshIndex final : public NeighborIndex {
 public:
  /// `epsilon_hint` fixes the bucket width w = bucket_width_factor * eps.
  LshIndex(const Dataset& dataset, double epsilon_hint,
           const LshParams& params = LshParams());

  void RangeQuery(std::span<const double> query, double epsilon,
                  std::vector<PointIndex>* out) const override;

  /// Number of hash tables in use.
  int num_tables() const { return static_cast<int>(tables_.size()); }

 private:
  struct KeyHash {
    size_t operator()(const std::vector<int32_t>& key) const {
      uint64_t h = 0x2545f4914f6cdd1dULL;
      for (const int32_t c : key) {
        h ^= static_cast<uint64_t>(static_cast<uint32_t>(c)) +
             0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return static_cast<size_t>(h);
    }
  };

  struct Table {
    // num_projections rows of (a vector, b offset).
    std::vector<std::vector<double>> directions;
    std::vector<double> offsets;
    std::unordered_map<std::vector<int32_t>, std::vector<PointIndex>, KeyHash>
        buckets;
  };

  std::vector<int32_t> HashKey(const Table& table,
                               std::span<const double> p) const;

  double bucket_width_;
  std::vector<Table> tables_;
  // Scratch for candidate de-duplication across tables.
  mutable std::vector<uint32_t> visit_mark_;
  mutable uint32_t visit_epoch_ = 0;
};

}  // namespace dbsvec

#endif  // DBSVEC_INDEX_LSH_INDEX_H_
