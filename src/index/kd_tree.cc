#include "index/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>
#include <limits>

#include "common/thread_pool.h"
#include "simd/distance.h"

namespace dbsvec {

KdTree::KdTree(const Dataset& dataset) : NeighborIndex(dataset) {
  const PointIndex n = dataset.size();
  order_.resize(n);
  for (PointIndex i = 0; i < n; ++i) {
    order_[i] = i;
  }
  if (n == 0) {
    return;
  }
  nodes_.reserve(static_cast<size_t>(2 * n / kLeafSize + 2));
  if (GlobalThreadPool() != nullptr && n >= kParallelBuildCutoff) {
    BuildParallel(n);
  } else {
    root_ = Build(0, n, 0, &nodes_, nullptr);
  }
  // Leaf-order SoA copy for batched leaf scans; built once the order_
  // permutation is final.
  view_ = simd::SoaBlockView(dataset, order_);
}

void KdTree::BuildParallel(PointIndex n) {
  // Sequential descent over the top of the tree until ~4 subtrees per
  // thread exist, then one arena-isolated sequential build per subtree.
  const int threads = GlobalThreads();
  int fork_depth = 0;
  while ((1 << fork_depth) < 4 * threads && fork_depth < 10) {
    ++fork_depth;
  }
  std::vector<SubtreeJob> jobs;
  root_ = Build(0, n, fork_depth, &nodes_, &jobs);

  struct JobResult {
    std::vector<Node> arena;
    int split_dim = 0;
    double split_value = 0.0;
    int32_t left = -1;
    int32_t right = -1;
  };
  std::vector<JobResult> results(jobs.size());
  ParallelFor(jobs.size(), 1, [&](size_t job_begin, size_t job_end) {
    for (size_t j = job_begin; j < job_end; ++j) {
      const SubtreeJob& job = jobs[j];
      JobResult& result = results[j];
      // The stub node already carries the range bbox; re-derive the split
      // exactly as the sequential Build would.
      const Node& stub = nodes_[job.node];
      int split_dim = 0;
      double widest = -1.0;
      for (int d = 0; d < dataset_.dim(); ++d) {
        const double spread = stub.bbox_max[d] - stub.bbox_min[d];
        if (spread > widest) {
          widest = spread;
          split_dim = d;
        }
      }
      const PointIndex mid = job.begin + (job.end - job.begin) / 2;
      std::nth_element(order_.begin() + job.begin, order_.begin() + mid,
                       order_.begin() + job.end,
                       [this, split_dim](PointIndex a, PointIndex b) {
                         return dataset_.at(a, split_dim) <
                                dataset_.at(b, split_dim);
                       });
      result.split_dim = split_dim;
      result.split_value = dataset_.at(order_[mid], split_dim);
      result.left = Build(job.begin, mid, 0, &result.arena, nullptr);
      result.right = Build(mid, job.end, 0, &result.arena, nullptr);
    }
  });

  // Splice the arenas in job order; node ids shift by the arena offset.
  for (size_t j = 0; j < jobs.size(); ++j) {
    JobResult& result = results[j];
    const int32_t offset = static_cast<int32_t>(nodes_.size());
    for (Node& node : result.arena) {
      if (node.left >= 0) node.left += offset;
      if (node.right >= 0) node.right += offset;
      nodes_.push_back(std::move(node));
    }
    Node& stub = nodes_[jobs[j].node];
    stub.split_dim = result.split_dim;
    stub.split_value = result.split_value;
    stub.left = result.left + offset;
    stub.right = result.right + offset;
  }
}

int32_t KdTree::Build(PointIndex begin, PointIndex end, int fork_depth,
                      std::vector<Node>* nodes,
                      std::vector<SubtreeJob>* jobs) {
  const int32_t id = static_cast<int32_t>(nodes->size());
  nodes->emplace_back();
  {
    Node& node = nodes->back();
    node.begin = begin;
    node.end = end;
  }
  // Compute the bounding box of this range and pick the widest dimension.
  const int dim = dataset_.dim();
  std::vector<double> lo(dim, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dim, -std::numeric_limits<double>::infinity());
  for (PointIndex k = begin; k < end; ++k) {
    const auto p = dataset_.point(order_[k]);
    for (int j = 0; j < dim; ++j) {
      if (p[j] < lo[j]) lo[j] = p[j];
      if (p[j] > hi[j]) hi[j] = p[j];
    }
  }
  (*nodes)[id].bbox_min = lo;
  (*nodes)[id].bbox_max = hi;

  if (end - begin <= kLeafSize) {
    return id;  // Leaf.
  }

  int split_dim = 0;
  double widest = -1.0;
  for (int j = 0; j < dim; ++j) {
    const double spread = hi[j] - lo[j];
    if (spread > widest) {
      widest = spread;
      split_dim = j;
    }
  }
  if (widest <= 0.0) {
    return id;  // All points identical: keep as leaf.
  }

  if (jobs != nullptr && fork_depth <= 0) {
    jobs->push_back({.node = id, .begin = begin, .end = end});
    return id;  // Split deferred to the parallel phase.
  }

  const PointIndex mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end,
                   [this, split_dim](PointIndex a, PointIndex b) {
                     return dataset_.at(a, split_dim) <
                            dataset_.at(b, split_dim);
                   });
  const double split_value = dataset_.at(order_[mid], split_dim);

  const int32_t left = Build(begin, mid, fork_depth - 1, nodes, jobs);
  const int32_t right = Build(mid, end, fork_depth - 1, nodes, jobs);
  Node& node = (*nodes)[id];  // Re-fetch: Build() may reallocate nodes.
  node.split_dim = split_dim;
  node.split_value = split_value;
  node.left = left;
  node.right = right;
  return id;
}

double KdTree::BboxSquaredDistance(const Node& node,
                                   std::span<const double> query) const {
  return simd::BoxSquaredDistance(query.data(), node.bbox_min.data(),
                                  node.bbox_max.data(), query.size());
}

template <typename Visitor>
void KdTree::Visit(int32_t node_id, std::span<const double> query,
                   double eps_sq, Visitor&& visit) const {
  const Node& node = nodes_[node_id];
  if (BboxSquaredDistance(node, query) > eps_sq) {
    return;
  }
  if (node.split_dim < 0) {
    const size_t count = static_cast<size_t>(node.end - node.begin);
    CountDistanceComputations(count);
    simd::ScratchLease scratch(count);
    double* d2 = scratch.data();
    view_.SquaredDistances(query, static_cast<size_t>(node.begin),
                           static_cast<size_t>(node.end), d2);
    for (PointIndex k = node.begin; k < node.end; ++k) {
      const double dist_sq = d2[k - node.begin];
      if (dist_sq <= eps_sq) {
        visit(order_[k], dist_sq);
      }
    }
    return;
  }
  Visit(node.left, query, eps_sq, visit);
  Visit(node.right, query, eps_sq, visit);
}

PointIndex KdTree::CountVisit(int32_t node_id, std::span<const double> query,
                              double eps_sq) const {
  const Node& node = nodes_[node_id];
  if (BboxSquaredDistance(node, query) > eps_sq) {
    return 0;
  }
  if (node.split_dim < 0) {
    CountDistanceComputations(
        static_cast<uint64_t>(node.end - node.begin));
    return static_cast<PointIndex>(
        view_.CountWithin(query, static_cast<size_t>(node.begin),
                          static_cast<size_t>(node.end), eps_sq));
  }
  return CountVisit(node.left, query, eps_sq) +
         CountVisit(node.right, query, eps_sq);
}

void KdTree::RangeQuery(std::span<const double> query, double epsilon,
                        std::vector<PointIndex>* out) const {
  out->clear();
  CountRangeQuery();
  if (root_ < 0) {
    return;
  }
  Visit(root_, query, epsilon * epsilon,
        [out](PointIndex i, double) { out->push_back(i); });
}

void KdTree::RangeQueryWithDistances(std::span<const double> query,
                                     double epsilon,
                                     std::vector<PointIndex>* out,
                                     std::vector<double>* dist_sq) const {
  out->clear();
  dist_sq->clear();
  CountRangeQuery();
  if (root_ < 0) {
    return;
  }
  Visit(root_, query, epsilon * epsilon,
        [out, dist_sq](PointIndex i, double d2) {
          out->push_back(i);
          dist_sq->push_back(d2);
        });
}

namespace {

/// Bounded max-heap of (squared distance, index) candidates.
class KnnHeap {
 public:
  explicit KnnHeap(int k) : k_(static_cast<size_t>(k)) {}

  double Worst() const {
    return items_.size() < k_ ? std::numeric_limits<double>::infinity()
                              : items_.front().first;
  }

  void Offer(double dist_sq, PointIndex index) {
    if (items_.size() < k_) {
      items_.emplace_back(dist_sq, index);
      std::push_heap(items_.begin(), items_.end());
    } else if (dist_sq < items_.front().first) {
      std::pop_heap(items_.begin(), items_.end());
      items_.back() = {dist_sq, index};
      std::push_heap(items_.begin(), items_.end());
    }
  }

  /// Destructive extraction, sorted by ascending distance (not squared).
  void Drain(std::vector<std::pair<double, PointIndex>>* out) {
    std::sort(items_.begin(), items_.end());
    out->clear();
    out->reserve(items_.size());
    for (const auto& [dist_sq, index] : items_) {
      out->emplace_back(std::sqrt(dist_sq), index);
    }
  }

 private:
  size_t k_;
  std::vector<std::pair<double, PointIndex>> items_;
};

}  // namespace

void KdTree::KnnQuery(std::span<const double> query, int k,
                      std::vector<std::pair<double, PointIndex>>* out) const {
  out->clear();
  if (root_ < 0 || k <= 0) {
    return;
  }
  KnnHeap heap(k);
  // Explicit stack of (node, bbox distance), nearest-first descent.
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const int32_t node_id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[node_id];
    if (BboxSquaredDistance(node, query) > heap.Worst()) {
      continue;
    }
    if (node.split_dim < 0) {
      const size_t count = static_cast<size_t>(node.end - node.begin);
      CountDistanceComputations(count);
      simd::ScratchLease scratch(count);
      double* d2 = scratch.data();
      view_.SquaredDistances(query, static_cast<size_t>(node.begin),
                             static_cast<size_t>(node.end), d2);
      for (PointIndex p = node.begin; p < node.end; ++p) {
        heap.Offer(d2[p - node.begin], order_[p]);
      }
      continue;
    }
    // Push the farther child first so the nearer one is explored first.
    const bool left_first = query[node.split_dim] <= node.split_value;
    stack.push_back(left_first ? node.right : node.left);
    stack.push_back(left_first ? node.left : node.right);
  }
  heap.Drain(out);
}

PointIndex KdTree::RangeCount(std::span<const double> query,
                              double epsilon) const {
  CountRangeQuery();
  if (root_ < 0) {
    return 0;
  }
  return CountVisit(root_, query, epsilon * epsilon);
}

}  // namespace dbsvec
