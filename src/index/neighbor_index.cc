#include "index/neighbor_index.h"

#include "common/thread_pool.h"
#include "fault/failpoint.h"
#include "index/brute_force_index.h"
#include "index/grid_index.h"
#include "index/kd_tree.h"
#include "index/r_star_tree.h"

namespace dbsvec {

PointIndex NeighborIndex::RangeCount(std::span<const double> query,
                                     double epsilon) const {
  std::vector<PointIndex> scratch;
  RangeQuery(query, epsilon, &scratch);
  return static_cast<PointIndex>(scratch.size());
}

Status NeighborIndex::RangeQueryBatch(
    std::span<const PointIndex> queries, double epsilon,
    std::vector<std::vector<PointIndex>>* results) const {
  results->resize(queries.size());
  // Each query writes only its own slot, so the fan-out is pure and the
  // batch output cannot depend on the thread count.
  ParallelFor(queries.size(), 1, [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      RangeQuery(queries[k], epsilon, &(*results)[k]);
    }
  });
  return Status::Ok();
}

void NeighborIndex::RangeQueryWithDistances(
    std::span<const double> query, double epsilon,
    std::vector<PointIndex>* out, std::vector<double>* dist_sq) const {
  RangeQuery(query, epsilon, out);
  dist_sq->clear();
  dist_sq->reserve(out->size());
  for (const PointIndex i : *out) {
    dist_sq->push_back(dataset_.SquaredDistanceTo(i, query));
  }
}

std::unique_ptr<NeighborIndex> CreateIndex(IndexType type,
                                           const Dataset& dataset,
                                           double epsilon_hint) {
  switch (type) {
    case IndexType::kBruteForce:
      return std::make_unique<BruteForceIndex>(dataset);
    case IndexType::kKdTree:
      return std::make_unique<KdTree>(dataset);
    case IndexType::kRStarTree:
      return std::make_unique<RStarTree>(dataset);
    case IndexType::kGrid:
      return std::make_unique<GridIndex>(
          dataset, epsilon_hint > 0.0 ? epsilon_hint : 1.0);
  }
  return nullptr;
}

Status CreateIndexChecked(IndexType type, const Dataset& dataset,
                          double epsilon_hint, const Deadline& deadline,
                          std::unique_ptr<NeighborIndex>* out) {
  out->reset();
  DBSVEC_RETURN_IF_ERROR(FailpointCheck("index.build"));
  DBSVEC_RETURN_IF_ERROR(deadline.Check("index build"));
  std::unique_ptr<NeighborIndex> index =
      CreateIndex(type, dataset, epsilon_hint);
  if (index == nullptr) {
    return Status::InvalidArgument("unknown index type");
  }
  // Bulk loads run to completion; an expired deadline is only observed
  // here, after the build.
  DBSVEC_RETURN_IF_ERROR(deadline.Check("index build"));
  *out = std::move(index);
  return Status::Ok();
}

const char* IndexTypeName(IndexType type) {
  switch (type) {
    case IndexType::kBruteForce:
      return "brute-force";
    case IndexType::kKdTree:
      return "kd-tree";
    case IndexType::kRStarTree:
      return "R*-tree";
    case IndexType::kGrid:
      return "grid";
  }
  return "unknown";
}

}  // namespace dbsvec
