#include "index/neighbor_index.h"

#include "index/brute_force_index.h"
#include "index/grid_index.h"
#include "index/kd_tree.h"
#include "index/r_star_tree.h"

namespace dbsvec {

thread_local NeighborIndex::QueryCounters* NeighborIndex::capture_ = nullptr;

PointIndex NeighborIndex::RangeCount(std::span<const double> query,
                                     double epsilon) const {
  std::vector<PointIndex> scratch;
  RangeQuery(query, epsilon, &scratch);
  return static_cast<PointIndex>(scratch.size());
}

void NeighborIndex::RangeQueryWithDistances(
    std::span<const double> query, double epsilon,
    std::vector<PointIndex>* out, std::vector<double>* dist_sq) const {
  RangeQuery(query, epsilon, out);
  dist_sq->clear();
  dist_sq->reserve(out->size());
  for (const PointIndex i : *out) {
    dist_sq->push_back(dataset_.SquaredDistanceTo(i, query));
  }
}

std::unique_ptr<NeighborIndex> CreateIndex(IndexType type,
                                           const Dataset& dataset,
                                           double epsilon_hint) {
  switch (type) {
    case IndexType::kBruteForce:
      return std::make_unique<BruteForceIndex>(dataset);
    case IndexType::kKdTree:
      return std::make_unique<KdTree>(dataset);
    case IndexType::kRStarTree:
      return std::make_unique<RStarTree>(dataset);
    case IndexType::kGrid:
      return std::make_unique<GridIndex>(
          dataset, epsilon_hint > 0.0 ? epsilon_hint : 1.0);
  }
  return nullptr;
}

const char* IndexTypeName(IndexType type) {
  switch (type) {
    case IndexType::kBruteForce:
      return "brute-force";
    case IndexType::kKdTree:
      return "kd-tree";
    case IndexType::kRStarTree:
      return "R*-tree";
    case IndexType::kGrid:
      return "grid";
  }
  return "unknown";
}

}  // namespace dbsvec
