#ifndef DBSVEC_INDEX_R_STAR_TREE_H_
#define DBSVEC_INDEX_R_STAR_TREE_H_

#include <span>
#include <vector>

#include "index/neighbor_index.h"
#include "simd/soa_block.h"

namespace dbsvec {

/// In-memory R-tree with R*-style minimum bounding rectangles, bulk loaded
/// with Sort-Tile-Recursive (STR) packing [Leutenegger et al.]. This is the
/// query engine behind the paper's R-DBSCAN baseline ("the original DBSCAN
/// algorithm implementation using an in-memory R-tree").
///
/// The dataset is static for the lifetime of a clustering run, so STR
/// packing (which yields near-optimal MBRs for point data) replaces the
/// dynamic R*-insert/split machinery without changing query behaviour.
class RStarTree final : public NeighborIndex {
 public:
  explicit RStarTree(const Dataset& dataset);

  void RangeQuery(std::span<const double> query, double epsilon,
                  std::vector<PointIndex>* out) const override;
  void RangeQueryWithDistances(std::span<const double> query, double epsilon,
                               std::vector<PointIndex>* out,
                               std::vector<double>* dist_sq) const override;
  PointIndex RangeCount(std::span<const double> query,
                        double epsilon) const override;

 private:
  static constexpr int kFanout = 16;
  /// Below this many points the bulk load stays sequential.
  static constexpr PointIndex kParallelBuildCutoff = 4096;

  struct Node {
    std::vector<double> mbr_min;
    std::vector<double> mbr_max;
    // Leaf: [begin, end) into order_. Internal: children node ids.
    PointIndex begin = 0;
    PointIndex end = 0;
    std::vector<int32_t> children;
    bool is_leaf = true;
  };

  /// Recursively tiles order_[begin, end) along dimension `dim` and appends
  /// packed leaves (ids into `*nodes`); used by the constructor. The
  /// parallel bulk load runs the top-level sort sequentially and then tiles
  /// each first-dimension slab concurrently into its own node arena; the
  /// arenas are spliced back in slab order, so `order_`, the leaf sequence
  /// and every MBR are identical to a sequential build.
  void TileAndPack(PointIndex begin, PointIndex end, int dim,
                   std::vector<Node>* nodes, std::vector<int32_t>* leaves);
  /// Builds the leaf level for n >= kParallelBuildCutoff points using the
  /// global thread pool.
  void BuildLeavesParallel(PointIndex n, std::vector<int32_t>* leaves);
  int32_t MakeLeaf(PointIndex begin, PointIndex end,
                   std::vector<Node>* nodes);
  int32_t PackLevel(const std::vector<int32_t>& level);
  double MbrSquaredDistance(const Node& node,
                            std::span<const double> query) const;
  /// Recursive range traversal; leaves are scanned as SoA blocks and the
  /// visitor receives (point index, squared distance) for every hit.
  template <typename Visitor>
  void Visit(int32_t node_id, std::span<const double> query, double eps_sq,
             Visitor&& visit) const;
  /// Counting-only traversal through the batched CountWithinEps primitive.
  PointIndex CountVisit(int32_t node_id, std::span<const double> query,
                        double eps_sq) const;

  std::vector<PointIndex> order_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  /// SoA copy of the dataset permuted by order_ (leaf-contiguous).
  simd::SoaBlockView view_;
};

}  // namespace dbsvec

#endif  // DBSVEC_INDEX_R_STAR_TREE_H_
