#ifndef DBSVEC_INDEX_DYNAMIC_R_STAR_TREE_H_
#define DBSVEC_INDEX_DYNAMIC_R_STAR_TREE_H_

#include <span>
#include <vector>

#include "index/neighbor_index.h"
#include "simd/soa_block.h"

namespace dbsvec {

/// Dynamic R*-tree [Beckmann et al. 1990] over a Dataset, built by
/// one-at-a-time insertion with the full R* machinery:
///
///  * ChooseSubtree — minimum overlap enlargement at the leaf level,
///    minimum area enlargement above it;
///  * forced reinsertion — on the first overflow per level of an
///    insertion, the 30% of entries farthest from the node center are
///    removed and reinserted;
///  * R* split — axis chosen by minimum margin sum over candidate
///    distributions, split index by minimum overlap (area as tie-break).
///
/// The STR-packed `RStarTree` is the right choice for the static datasets
/// of the paper's experiments; this class provides the incremental
/// behaviour of the R-DBSCAN baseline's "in-memory R-tree" for workloads
/// that grow, and serves as a cross-check of the packed tree (both must
/// answer every range query identically).
class DynamicRStarTree final : public NeighborIndex {
 public:
  /// Indexes all current points of `dataset` via repeated Insert.
  explicit DynamicRStarTree(const Dataset& dataset);

  /// Inserts dataset point `i` (useful after Dataset::Append — the tree
  /// does not observe appends by itself).
  void Insert(PointIndex i);

  void RangeQuery(std::span<const double> query, double epsilon,
                  std::vector<PointIndex>* out) const override;

  /// Tree height (0 for an empty tree); exposed for invariant tests.
  int height() const { return height_; }
  /// Number of indexed points; exposed for invariant tests.
  PointIndex size() const { return count_; }
  /// Validates the structural invariants (MBR containment, fill factors);
  /// returns false and stops at the first violation. Test hook.
  bool CheckInvariants() const;

 private:
  static constexpr int kMaxEntries = 16;
  static constexpr int kMinEntries = 6;          // ~40% of max.
  static constexpr int kReinsertCount = 5;       // ~30% of max.

  struct Node {
    bool is_leaf = true;
    std::vector<int32_t> children;   // Node ids (internal) or points (leaf).
    std::vector<double> mbr_min;
    std::vector<double> mbr_max;
    int32_t parent = -1;
    // SoA page over the leaf's points (leaf nodes only), scanned by the
    // batched SIMD distance kernels. Rebuilt *eagerly* at the end of every
    // Insert for the leaves whose children changed — RangeQuery stays
    // const and safe under concurrent readers (the serving overlay tree is
    // queried under a shared lock), which a lazy build-on-scan could not be.
    simd::SoaBlockView soa;
    bool soa_dirty = false;
  };

  int32_t NewNode(bool is_leaf);
  void RecomputeMbr(int32_t node_id);
  void ExtendMbr(int32_t node_id, std::span<const double> lo,
                 std::span<const double> hi);
  void EntryBox(const Node& node, int entry, std::vector<double>* lo,
                std::vector<double>* hi) const;
  double Area(std::span<const double> lo, std::span<const double> hi) const;
  double Margin(std::span<const double> lo,
                std::span<const double> hi) const;
  double Overlap(std::span<const double> a_lo, std::span<const double> a_hi,
                 std::span<const double> b_lo,
                 std::span<const double> b_hi) const;
  double Enlargement(std::span<const double> lo, std::span<const double> hi,
                     std::span<const double> p) const;

  int32_t ChooseSubtree(std::span<const double> p, int target_level) const;
  int NodeLevel(int32_t node_id) const;
  void InsertEntry(int32_t entry, std::span<const double> lo,
                   std::span<const double> hi, int target_level,
                   std::vector<bool>* reinserted_levels);
  void HandleOverflow(int32_t node_id,
                      std::vector<bool>* reinserted_levels);
  void ReinsertEntries(int32_t node_id,
                       std::vector<bool>* reinserted_levels);
  void SplitNode(int32_t node_id, std::vector<bool>* reinserted_levels);
  void PropagateMbrUp(int32_t node_id);

  /// Queues `node_id` for a page rebuild (no-op if already queued).
  void MarkLeafDirty(int32_t node_id);
  /// Rebuilds the SoA page of every queued leaf; called at the end of each
  /// Insert, so between inserts no leaf page is ever stale.
  void RefreshLeafPages();

  std::vector<Node> nodes_;
  std::vector<int32_t> dirty_leaves_;
  int32_t root_ = -1;
  int height_ = 0;
  PointIndex count_ = 0;
};

}  // namespace dbsvec

#endif  // DBSVEC_INDEX_DYNAMIC_R_STAR_TREE_H_
