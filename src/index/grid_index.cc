#include "index/grid_index.h"

#include <cmath>

namespace dbsvec {

GridIndex::GridIndex(const Dataset& dataset, double cell_width)
    : NeighborIndex(dataset), cell_width_(cell_width) {
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    cells_[CellOf(dataset.point(i))].push_back(i);
  }
}

std::vector<int32_t> GridIndex::CellOf(std::span<const double> p) const {
  std::vector<int32_t> key(p.size());
  for (size_t j = 0; j < p.size(); ++j) {
    key[j] = static_cast<int32_t>(std::floor(p[j] / cell_width_));
  }
  return key;
}

void GridIndex::RangeQuery(std::span<const double> query, double epsilon,
                           std::vector<PointIndex>* out) const {
  out->clear();
  ++num_range_queries_;
  const double eps_sq = epsilon * epsilon;
  const int dim = dataset_.dim();
  const std::vector<int32_t> center = CellOf(query);
  // Enumerate the 3^d neighborhood with an odometer over per-dimension
  // offsets in {-1, 0, +1}.
  std::vector<int32_t> offset(dim, -1);
  std::vector<int32_t> key(dim);
  while (true) {
    for (int j = 0; j < dim; ++j) {
      key[j] = center[j] + offset[j];
    }
    const auto it = cells_.find(key);
    if (it != cells_.end()) {
      num_distance_computations_ += it->second.size();
      for (const PointIndex i : it->second) {
        if (dataset_.SquaredDistanceTo(i, query) <= eps_sq) {
          out->push_back(i);
        }
      }
    }
    // Advance the odometer.
    int j = 0;
    while (j < dim && offset[j] == 1) {
      offset[j] = -1;
      ++j;
    }
    if (j == dim) {
      break;
    }
    ++offset[j];
  }
}

}  // namespace dbsvec
