#include "index/grid_index.h"

#include <cmath>

#include "common/thread_pool.h"

namespace dbsvec {

GridIndex::GridIndex(const Dataset& dataset, double cell_width)
    : NeighborIndex(dataset), cell_width_(cell_width) {
  const size_t n = static_cast<size_t>(dataset.size());
  constexpr size_t kParallelGrain = 4096;
  const size_t chunks = ParallelChunks(n, kParallelGrain);
  if (chunks <= 1) {
    for (PointIndex i = 0; i < dataset.size(); ++i) {
      cells_[CellOf(dataset.point(i))].push_back(i);
    }
    return;
  }
  // Bin contiguous chunks into per-chunk maps, then fold them in chunk
  // order: every cell vector ends up in ascending point order, exactly as
  // the sequential loop produces, for any chunk count.
  std::vector<CellMap> partial(chunks);
  ParallelForChunked(n, kParallelGrain,
                     [&](size_t chunk, size_t begin, size_t end) {
                       CellMap& local = partial[chunk];
                       for (size_t i = begin; i < end; ++i) {
                         const PointIndex p = static_cast<PointIndex>(i);
                         local[CellOf(dataset.point(p))].push_back(p);
                       }
                     });
  for (CellMap& local : partial) {
    for (auto& [key, points] : local) {
      std::vector<PointIndex>& cell = cells_[key];
      cell.insert(cell.end(), points.begin(), points.end());
    }
  }
}

std::vector<int32_t> GridIndex::CellOf(std::span<const double> p) const {
  std::vector<int32_t> key(p.size());
  for (size_t j = 0; j < p.size(); ++j) {
    key[j] = static_cast<int32_t>(std::floor(p[j] / cell_width_));
  }
  return key;
}

void GridIndex::RangeQuery(std::span<const double> query, double epsilon,
                           std::vector<PointIndex>* out) const {
  out->clear();
  CountRangeQuery();
  const double eps_sq = epsilon * epsilon;
  const int dim = dataset_.dim();
  const std::vector<int32_t> center = CellOf(query);
  // Enumerate the 3^d neighborhood with an odometer over per-dimension
  // offsets in {-1, 0, +1}.
  std::vector<int32_t> offset(dim, -1);
  std::vector<int32_t> key(dim);
  while (true) {
    for (int j = 0; j < dim; ++j) {
      key[j] = center[j] + offset[j];
    }
    const auto it = cells_.find(key);
    if (it != cells_.end()) {
      CountDistanceComputations(it->second.size());
      for (const PointIndex i : it->second) {
        if (dataset_.SquaredDistanceTo(i, query) <= eps_sq) {
          out->push_back(i);
        }
      }
    }
    // Advance the odometer.
    int j = 0;
    while (j < dim && offset[j] == 1) {
      offset[j] = -1;
      ++j;
    }
    if (j == dim) {
      break;
    }
    ++offset[j];
  }
}

}  // namespace dbsvec
