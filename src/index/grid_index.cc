#include "index/grid_index.h"

#include <cmath>

#include "common/thread_pool.h"

namespace dbsvec {

GridIndex::GridIndex(const Dataset& dataset, double cell_width)
    : NeighborIndex(dataset), cell_width_(cell_width) {
  const size_t n = static_cast<size_t>(dataset.size());
  constexpr size_t kParallelGrain = 4096;
  std::unordered_map<std::vector<int32_t>, std::vector<PointIndex>, CellHash>
      binned;
  const size_t chunks = ParallelChunks(n, kParallelGrain);
  if (chunks <= 1) {
    for (PointIndex i = 0; i < dataset.size(); ++i) {
      binned[CellOf(dataset.point(i))].push_back(i);
    }
  } else {
    // Bin contiguous chunks into per-chunk maps, then fold them in chunk
    // order: every cell vector ends up in ascending point order, exactly
    // as the sequential loop produces, for any chunk count.
    std::vector<
        std::unordered_map<std::vector<int32_t>, std::vector<PointIndex>,
                           CellHash>>
        partial(chunks);
    ParallelForChunked(n, kParallelGrain,
                       [&](size_t chunk, size_t begin, size_t end) {
                         auto& local = partial[chunk];
                         for (size_t i = begin; i < end; ++i) {
                           const PointIndex p = static_cast<PointIndex>(i);
                           local[CellOf(dataset.point(p))].push_back(p);
                         }
                       });
    for (auto& local : partial) {
      for (auto& [key, points] : local) {
        std::vector<PointIndex>& cell = binned[key];
        cell.insert(cell.end(), points.begin(), points.end());
      }
    }
  }
  // Flatten each cell into a contiguous range of cell_order_ so leaf scans
  // run on the batched SoA view. Per-cell member order is preserved, so
  // query result order is unchanged.
  cell_order_.reserve(n);
  cells_.reserve(binned.size());
  for (auto& [key, points] : binned) {
    CellRange range;
    range.begin = static_cast<uint32_t>(cell_order_.size());
    cell_order_.insert(cell_order_.end(), points.begin(), points.end());
    range.end = static_cast<uint32_t>(cell_order_.size());
    cells_.emplace(key, range);
  }
  view_ = simd::SoaBlockView(dataset, cell_order_);
}

std::vector<int32_t> GridIndex::CellOf(std::span<const double> p) const {
  std::vector<int32_t> key(p.size());
  for (size_t j = 0; j < p.size(); ++j) {
    key[j] = static_cast<int32_t>(std::floor(p[j] / cell_width_));
  }
  return key;
}

template <typename CellVisitor>
void GridIndex::VisitCells(std::span<const double> query,
                           CellVisitor&& visit) const {
  const int dim = dataset_.dim();
  const std::vector<int32_t> center = CellOf(query);
  // Enumerate the 3^d neighborhood with an odometer over per-dimension
  // offsets in {-1, 0, +1}.
  std::vector<int32_t> offset(dim, -1);
  std::vector<int32_t> key(dim);
  while (true) {
    for (int j = 0; j < dim; ++j) {
      key[j] = center[j] + offset[j];
    }
    const auto it = cells_.find(key);
    if (it != cells_.end()) {
      visit(it->second);
    }
    // Advance the odometer.
    int j = 0;
    while (j < dim && offset[j] == 1) {
      offset[j] = -1;
      ++j;
    }
    if (j == dim) {
      break;
    }
    ++offset[j];
  }
}

void GridIndex::RangeQuery(std::span<const double> query, double epsilon,
                           std::vector<PointIndex>* out) const {
  out->clear();
  CountRangeQuery();
  const double eps_sq = epsilon * epsilon;
  VisitCells(query, [&](const CellRange& cell) {
    const size_t count = cell.end - cell.begin;
    CountDistanceComputations(count);
    simd::ScratchLease scratch(count);
    double* d2 = scratch.data();
    view_.SquaredDistances(query, cell.begin, cell.end, d2);
    for (size_t k = cell.begin; k < cell.end; ++k) {
      if (d2[k - cell.begin] <= eps_sq) {
        out->push_back(cell_order_[k]);
      }
    }
  });
}

void GridIndex::RangeQueryWithDistances(std::span<const double> query,
                                        double epsilon,
                                        std::vector<PointIndex>* out,
                                        std::vector<double>* dist_sq) const {
  out->clear();
  dist_sq->clear();
  CountRangeQuery();
  const double eps_sq = epsilon * epsilon;
  VisitCells(query, [&](const CellRange& cell) {
    const size_t count = cell.end - cell.begin;
    CountDistanceComputations(count);
    simd::ScratchLease scratch(count);
    double* d2 = scratch.data();
    view_.SquaredDistances(query, cell.begin, cell.end, d2);
    for (size_t k = cell.begin; k < cell.end; ++k) {
      const double dist = d2[k - cell.begin];
      if (dist <= eps_sq) {
        out->push_back(cell_order_[k]);
        dist_sq->push_back(dist);
      }
    }
  });
}

PointIndex GridIndex::RangeCount(std::span<const double> query,
                                 double epsilon) const {
  CountRangeQuery();
  const double eps_sq = epsilon * epsilon;
  PointIndex count = 0;
  VisitCells(query, [&](const CellRange& cell) {
    CountDistanceComputations(cell.end - cell.begin);
    count += static_cast<PointIndex>(
        view_.CountWithin(query, cell.begin, cell.end, eps_sq));
  });
  return count;
}

}  // namespace dbsvec
