#include "index/dynamic_r_star_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "simd/distance.h"

namespace dbsvec {

DynamicRStarTree::DynamicRStarTree(const Dataset& dataset)
    : NeighborIndex(dataset) {
  for (PointIndex i = 0; i < dataset.size(); ++i) {
    Insert(i);
  }
}

int32_t DynamicRStarTree::NewNode(bool is_leaf) {
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  Node& node = nodes_.back();
  node.is_leaf = is_leaf;
  const int dim = dataset_.dim();
  node.mbr_min.assign(dim, std::numeric_limits<double>::infinity());
  node.mbr_max.assign(dim, -std::numeric_limits<double>::infinity());
  if (is_leaf) {
    MarkLeafDirty(id);
  }
  return id;
}

void DynamicRStarTree::MarkLeafDirty(int32_t node_id) {
  Node& node = nodes_[node_id];
  if (!node.soa_dirty) {
    node.soa_dirty = true;
    dirty_leaves_.push_back(node_id);
  }
}

void DynamicRStarTree::RefreshLeafPages() {
  for (const int32_t node_id : dirty_leaves_) {
    Node& node = nodes_[node_id];
    node.soa = simd::SoaBlockView(dataset_, node.children);
    node.soa_dirty = false;
  }
  dirty_leaves_.clear();
}

void DynamicRStarTree::EntryBox(const Node& node, int entry,
                                std::vector<double>* lo,
                                std::vector<double>* hi) const {
  const int dim = dataset_.dim();
  lo->resize(dim);
  hi->resize(dim);
  if (node.is_leaf) {
    const auto p = dataset_.point(node.children[entry]);
    for (int j = 0; j < dim; ++j) {
      (*lo)[j] = p[j];
      (*hi)[j] = p[j];
    }
  } else {
    const Node& child = nodes_[node.children[entry]];
    *lo = child.mbr_min;
    *hi = child.mbr_max;
  }
}

void DynamicRStarTree::RecomputeMbr(int32_t node_id) {
  Node& node = nodes_[node_id];
  const int dim = dataset_.dim();
  node.mbr_min.assign(dim, std::numeric_limits<double>::infinity());
  node.mbr_max.assign(dim, -std::numeric_limits<double>::infinity());
  std::vector<double> lo;
  std::vector<double> hi;
  for (int e = 0; e < static_cast<int>(node.children.size()); ++e) {
    EntryBox(node, e, &lo, &hi);
    for (int j = 0; j < dim; ++j) {
      node.mbr_min[j] = std::min(node.mbr_min[j], lo[j]);
      node.mbr_max[j] = std::max(node.mbr_max[j], hi[j]);
    }
  }
}

void DynamicRStarTree::ExtendMbr(int32_t node_id, std::span<const double> lo,
                                 std::span<const double> hi) {
  Node& node = nodes_[node_id];
  for (int j = 0; j < dataset_.dim(); ++j) {
    node.mbr_min[j] = std::min(node.mbr_min[j], lo[j]);
    node.mbr_max[j] = std::max(node.mbr_max[j], hi[j]);
  }
}

double DynamicRStarTree::Area(std::span<const double> lo,
                              std::span<const double> hi) const {
  double area = 1.0;
  for (size_t j = 0; j < lo.size(); ++j) {
    area *= std::max(0.0, hi[j] - lo[j]);
  }
  return area;
}

double DynamicRStarTree::Margin(std::span<const double> lo,
                                std::span<const double> hi) const {
  double margin = 0.0;
  for (size_t j = 0; j < lo.size(); ++j) {
    margin += std::max(0.0, hi[j] - lo[j]);
  }
  return margin;
}

double DynamicRStarTree::Overlap(std::span<const double> a_lo,
                                 std::span<const double> a_hi,
                                 std::span<const double> b_lo,
                                 std::span<const double> b_hi) const {
  double overlap = 1.0;
  for (size_t j = 0; j < a_lo.size(); ++j) {
    const double side =
        std::min(a_hi[j], b_hi[j]) - std::max(a_lo[j], b_lo[j]);
    if (side <= 0.0) {
      return 0.0;
    }
    overlap *= side;
  }
  return overlap;
}

double DynamicRStarTree::Enlargement(std::span<const double> lo,
                                     std::span<const double> hi,
                                     std::span<const double> p) const {
  double enlarged = 1.0;
  double original = 1.0;
  for (size_t j = 0; j < lo.size(); ++j) {
    original *= std::max(0.0, hi[j] - lo[j]);
    enlarged *=
        std::max(0.0, std::max(hi[j], p[j]) - std::min(lo[j], p[j]));
  }
  return enlarged - original;
}

int DynamicRStarTree::NodeLevel(int32_t node_id) const {
  int level = 0;
  int32_t current = node_id;
  while (!nodes_[current].is_leaf) {
    current = nodes_[current].children.front();
    ++level;
  }
  return level;
}

int32_t DynamicRStarTree::ChooseSubtree(std::span<const double> p,
                                        int target_level) const {
  int32_t current = root_;
  int level = height_ - 1;
  std::vector<double> lo;
  std::vector<double> hi;
  std::vector<double> other_lo;
  std::vector<double> other_hi;
  std::vector<double> grown_lo;
  std::vector<double> grown_hi;
  while (level > target_level) {
    const Node& node = nodes_[current];
    const bool children_are_leaves = nodes_[node.children.front()].is_leaf;
    int best = 0;
    double best_primary = std::numeric_limits<double>::infinity();
    double best_secondary = std::numeric_limits<double>::infinity();
    for (int e = 0; e < static_cast<int>(node.children.size()); ++e) {
      EntryBox(node, e, &lo, &hi);
      double primary;
      if (children_are_leaves) {
        // R*: minimize overlap enlargement among sibling leaves.
        grown_lo = lo;
        grown_hi = hi;
        for (size_t j = 0; j < p.size(); ++j) {
          grown_lo[j] = std::min(grown_lo[j], p[j]);
          grown_hi[j] = std::max(grown_hi[j], p[j]);
        }
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (int o = 0; o < static_cast<int>(node.children.size()); ++o) {
          if (o == e) {
            continue;
          }
          EntryBox(node, o, &other_lo, &other_hi);
          overlap_before += Overlap(lo, hi, other_lo, other_hi);
          overlap_after += Overlap(grown_lo, grown_hi, other_lo, other_hi);
        }
        primary = overlap_after - overlap_before;
      } else {
        primary = Enlargement(lo, hi, p);
      }
      const double secondary =
          children_are_leaves ? Enlargement(lo, hi, p) : Area(lo, hi);
      if (primary < best_primary ||
          (primary == best_primary && secondary < best_secondary)) {
        best_primary = primary;
        best_secondary = secondary;
        best = e;
      }
    }
    current = node.children[best];
    --level;
  }
  return current;
}

void DynamicRStarTree::PropagateMbrUp(int32_t node_id) {
  int32_t current = nodes_[node_id].parent;
  while (current >= 0) {
    RecomputeMbr(current);
    current = nodes_[current].parent;
  }
}

void DynamicRStarTree::InsertEntry(int32_t entry, std::span<const double> lo,
                                   std::span<const double> hi,
                                   int target_level,
                                   std::vector<bool>* reinserted_levels) {
  const int32_t node_id = ChooseSubtree(lo, target_level);
  Node& node = nodes_[node_id];
  node.children.push_back(entry);
  if (!node.is_leaf) {
    nodes_[entry].parent = node_id;
  } else {
    MarkLeafDirty(node_id);
  }
  ExtendMbr(node_id, lo, hi);
  PropagateMbrUp(node_id);
  if (static_cast<int>(node.children.size()) > kMaxEntries) {
    HandleOverflow(node_id, reinserted_levels);
  }
}

void DynamicRStarTree::HandleOverflow(int32_t node_id,
                                      std::vector<bool>* reinserted_levels) {
  const int level = NodeLevel(node_id);
  if (static_cast<size_t>(level) >= reinserted_levels->size()) {
    reinserted_levels->resize(level + 1, false);
  }
  if (node_id != root_ && !(*reinserted_levels)[level]) {
    (*reinserted_levels)[level] = true;
    ReinsertEntries(node_id, reinserted_levels);
  } else {
    SplitNode(node_id, reinserted_levels);
  }
}

void DynamicRStarTree::ReinsertEntries(int32_t node_id,
                                       std::vector<bool>* reinserted_levels) {
  const int level = NodeLevel(node_id);
  const int dim = dataset_.dim();
  Node& node = nodes_[node_id];
  // Sort entries by decreasing distance of their box center from the node
  // MBR center; pull the farthest kReinsertCount out.
  std::vector<double> center(dim);
  for (int j = 0; j < dim; ++j) {
    center[j] = 0.5 * (node.mbr_min[j] + node.mbr_max[j]);
  }
  std::vector<double> lo;
  std::vector<double> hi;
  std::vector<std::pair<double, int>> by_distance;
  for (int e = 0; e < static_cast<int>(node.children.size()); ++e) {
    EntryBox(node, e, &lo, &hi);
    double dist = 0.0;
    for (int j = 0; j < dim; ++j) {
      const double diff = 0.5 * (lo[j] + hi[j]) - center[j];
      dist += diff * diff;
    }
    by_distance.emplace_back(dist, e);
  }
  std::sort(by_distance.begin(), by_distance.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::vector<int32_t> evicted;
  std::vector<bool> keep(node.children.size(), true);
  for (int k = 0; k < kReinsertCount &&
                  k < static_cast<int>(by_distance.size());
       ++k) {
    keep[by_distance[k].second] = false;
    evicted.push_back(node.children[by_distance[k].second]);
  }
  std::vector<int32_t> kept;
  for (int e = 0; e < static_cast<int>(node.children.size()); ++e) {
    if (keep[e]) {
      kept.push_back(node.children[e]);
    }
  }
  node.children = std::move(kept);
  if (node.is_leaf) {
    MarkLeafDirty(node_id);
  }
  RecomputeMbr(node_id);
  PropagateMbrUp(node_id);

  for (const int32_t entry : evicted) {
    if (nodes_[node_id].is_leaf) {
      const auto p = dataset_.point(entry);
      InsertEntry(entry, p, p, level, reinserted_levels);
    } else {
      InsertEntry(entry, nodes_[entry].mbr_min, nodes_[entry].mbr_max,
                  level, reinserted_levels);
    }
  }
}

void DynamicRStarTree::SplitNode(int32_t node_id,
                                 std::vector<bool>* reinserted_levels) {
  const int dim = dataset_.dim();
  // Work on copies: splitting mutates the node list.
  const bool is_leaf = nodes_[node_id].is_leaf;
  std::vector<int32_t> entries = nodes_[node_id].children;
  const int total = static_cast<int>(entries.size());

  std::vector<double> lo;
  std::vector<double> hi;
  // R* axis selection: minimize the margin sum over all candidate
  // distributions along each axis; entries sorted by box lower bound.
  auto sort_key = [&](int32_t entry, int axis) {
    if (is_leaf) {
      return dataset_.at(entry, axis);
    }
    return nodes_[entry].mbr_min[axis];
  };

  int best_axis = 0;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  std::vector<int32_t> best_order;
  for (int axis = 0; axis < dim; ++axis) {
    std::vector<int32_t> order = entries;
    std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
      return sort_key(a, axis) < sort_key(b, axis);
    });
    // Prefix/suffix boxes for margin computation.
    double margin_sum = 0.0;
    for (int k = kMinEntries; k <= total - kMinEntries; ++k) {
      std::vector<double> g1_lo(dim,
                                std::numeric_limits<double>::infinity());
      std::vector<double> g1_hi(dim,
                                -std::numeric_limits<double>::infinity());
      std::vector<double> g2_lo = g1_lo;
      std::vector<double> g2_hi = g1_hi;
      for (int e = 0; e < total; ++e) {
        if (is_leaf) {
          const auto p = dataset_.point(order[e]);
          lo.assign(p.begin(), p.end());
          hi = lo;
        } else {
          lo = nodes_[order[e]].mbr_min;
          hi = nodes_[order[e]].mbr_max;
        }
        auto& g_lo = e < k ? g1_lo : g2_lo;
        auto& g_hi = e < k ? g1_hi : g2_hi;
        for (int j = 0; j < dim; ++j) {
          g_lo[j] = std::min(g_lo[j], lo[j]);
          g_hi[j] = std::max(g_hi[j], hi[j]);
        }
      }
      margin_sum += Margin(g1_lo, g1_hi) + Margin(g2_lo, g2_hi);
    }
    if (margin_sum < best_margin_sum) {
      best_margin_sum = margin_sum;
      best_axis = axis;
      best_order = std::move(order);
    }
  }
  (void)best_axis;

  // Split index: minimize overlap between the two groups (area ties).
  int best_k = kMinEntries;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (int k = kMinEntries; k <= total - kMinEntries; ++k) {
    std::vector<double> g1_lo(dim, std::numeric_limits<double>::infinity());
    std::vector<double> g1_hi(dim, -std::numeric_limits<double>::infinity());
    std::vector<double> g2_lo = g1_lo;
    std::vector<double> g2_hi = g1_hi;
    for (int e = 0; e < total; ++e) {
      if (is_leaf) {
        const auto p = dataset_.point(best_order[e]);
        lo.assign(p.begin(), p.end());
        hi = lo;
      } else {
        lo = nodes_[best_order[e]].mbr_min;
        hi = nodes_[best_order[e]].mbr_max;
      }
      auto& g_lo = e < k ? g1_lo : g2_lo;
      auto& g_hi = e < k ? g1_hi : g2_hi;
      for (int j = 0; j < dim; ++j) {
        g_lo[j] = std::min(g_lo[j], lo[j]);
        g_hi[j] = std::max(g_hi[j], hi[j]);
      }
    }
    const double overlap = Overlap(g1_lo, g1_hi, g2_lo, g2_hi);
    const double area = Area(g1_lo, g1_hi) + Area(g2_lo, g2_hi);
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  // Materialize the two groups.
  const int32_t sibling_id = NewNode(is_leaf);
  Node& node = nodes_[node_id];
  Node& sibling = nodes_[sibling_id];
  node.children.assign(best_order.begin(), best_order.begin() + best_k);
  sibling.children.assign(best_order.begin() + best_k, best_order.end());
  if (!is_leaf) {
    for (const int32_t child : sibling.children) {
      nodes_[child].parent = sibling_id;
    }
  } else {
    MarkLeafDirty(node_id);
    MarkLeafDirty(sibling_id);
  }
  RecomputeMbr(node_id);
  RecomputeMbr(sibling_id);

  if (node_id == root_) {
    const int32_t new_root = NewNode(/*is_leaf=*/false);
    nodes_[new_root].children = {node_id, sibling_id};
    nodes_[node_id].parent = new_root;
    nodes_[sibling_id].parent = new_root;
    RecomputeMbr(new_root);
    root_ = new_root;
    ++height_;
    return;
  }

  const int32_t parent_id = nodes_[node_id].parent;
  nodes_[sibling_id].parent = parent_id;
  nodes_[parent_id].children.push_back(sibling_id);
  RecomputeMbr(parent_id);
  PropagateMbrUp(parent_id);
  if (static_cast<int>(nodes_[parent_id].children.size()) > kMaxEntries) {
    HandleOverflow(parent_id, reinserted_levels);
  }
}

void DynamicRStarTree::Insert(PointIndex i) {
  if (root_ < 0) {
    root_ = NewNode(/*is_leaf=*/true);
    height_ = 1;
  }
  std::vector<bool> reinserted_levels(height_, false);
  const auto p = dataset_.point(i);
  InsertEntry(i, p, p, /*target_level=*/0, &reinserted_levels);
  ++count_;
  RefreshLeafPages();
}

void DynamicRStarTree::RangeQuery(std::span<const double> query,
                                  double epsilon,
                                  std::vector<PointIndex>* out) const {
  out->clear();
  CountRangeQuery();
  if (root_ < 0) {
    return;
  }
  const double eps_sq = epsilon * epsilon;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    // Min squared distance from the query to the node MBR.
    const double min_sq = simd::BoxSquaredDistance(
        query.data(), node.mbr_min.data(), node.mbr_max.data(), query.size());
    if (min_sq > eps_sq) {
      continue;
    }
    if (node.is_leaf) {
      const size_t count = node.children.size();
      CountDistanceComputations(count);
      simd::ScratchLease scratch(count);
      double* const dist = scratch.data();
      node.soa.SquaredDistances(query, 0, count, dist);
      for (size_t k = 0; k < count; ++k) {
        if (dist[k] <= eps_sq) {
          out->push_back(node.children[k]);
        }
      }
    } else {
      stack.insert(stack.end(), node.children.begin(), node.children.end());
    }
  }
}

bool DynamicRStarTree::CheckInvariants() const {
  if (root_ < 0) {
    return count_ == 0;
  }
  // Every node: children within capacity, MBR tight over entries, parents
  // consistent; every point reachable exactly once.
  PointIndex seen = 0;
  std::vector<int32_t> stack = {root_};
  std::vector<double> lo;
  std::vector<double> hi;
  while (!stack.empty()) {
    const int32_t node_id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[node_id];
    if (node.children.empty() && node_id != root_) {
      return false;
    }
    if (static_cast<int>(node.children.size()) > kMaxEntries) {
      return false;
    }
    // Leaf SoA pages must be fresh between inserts: every leaf's page
    // covers exactly its current children.
    if (node.is_leaf &&
        (node.soa_dirty || node.soa.size() != node.children.size())) {
      return false;
    }
    for (int e = 0; e < static_cast<int>(node.children.size()); ++e) {
      EntryBox(node, e, &lo, &hi);
      for (int j = 0; j < dataset_.dim(); ++j) {
        if (lo[j] < node.mbr_min[j] - 1e-12 ||
            hi[j] > node.mbr_max[j] + 1e-12) {
          return false;
        }
      }
      if (!node.is_leaf) {
        if (nodes_[node.children[e]].parent != node_id) {
          return false;
        }
        stack.push_back(node.children[e]);
      } else {
        ++seen;
      }
    }
  }
  return seen == count_;
}

}  // namespace dbsvec
