#ifndef DBSVEC_INDEX_GRID_INDEX_H_
#define DBSVEC_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "index/neighbor_index.h"
#include "simd/soa_block.h"

namespace dbsvec {

/// Uniform hash grid with cell width equal to a fixed radius, answering
/// range queries for radii up to that width by scanning the 3^d surrounding
/// cells. Effective in low dimensions only — the per-query cell count grows
/// exponentially with d, which is exactly the weakness of grid-based
/// DBSCAN approximations that the paper's Fig. 6b measures.
///
/// Cell membership is stored as contiguous ranges of one flat point
/// permutation (`cell_order_`), mirrored by a structure-of-arrays view, so
/// each visited cell is scanned with the batched SIMD distance primitives.
class GridIndex final : public NeighborIndex {
 public:
  /// `cell_width` must be >= the largest epsilon this index will be queried
  /// with (queries with larger epsilon return incomplete results).
  GridIndex(const Dataset& dataset, double cell_width);

  void RangeQuery(std::span<const double> query, double epsilon,
                  std::vector<PointIndex>* out) const override;
  void RangeQueryWithDistances(std::span<const double> query, double epsilon,
                               std::vector<PointIndex>* out,
                               std::vector<double>* dist_sq) const override;
  PointIndex RangeCount(std::span<const double> query,
                        double epsilon) const override;

  /// Cell width the index was built with.
  double cell_width() const { return cell_width_; }
  /// Number of non-empty cells.
  size_t num_cells() const { return cells_.size(); }

 private:
  struct CellHash {
    size_t operator()(const std::vector<int32_t>& key) const {
      uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (const int32_t c : key) {
        h ^= static_cast<uint64_t>(static_cast<uint32_t>(c)) +
             0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return static_cast<size_t>(h);
    }
  };

  /// Interval [begin, end) into cell_order_.
  struct CellRange {
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  using CellMap =
      std::unordered_map<std::vector<int32_t>, CellRange, CellHash>;

  std::vector<int32_t> CellOf(std::span<const double> p) const;

  /// Calls visit(range) for every non-empty cell in the 3^d neighborhood
  /// of `query`'s cell, in odometer order.
  template <typename CellVisitor>
  void VisitCells(std::span<const double> query,
                  CellVisitor&& visit) const;

  double cell_width_;
  CellMap cells_;
  /// Points grouped by cell; each cell's members keep ascending point
  /// order, exactly as the pre-flattening per-cell vectors did.
  std::vector<PointIndex> cell_order_;
  /// SoA copy of the dataset permuted by cell_order_ (cell-contiguous).
  simd::SoaBlockView view_;
};

}  // namespace dbsvec

#endif  // DBSVEC_INDEX_GRID_INDEX_H_
