#include "index/r_star_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.h"
#include "simd/distance.h"

namespace dbsvec {

RStarTree::RStarTree(const Dataset& dataset) : NeighborIndex(dataset) {
  const PointIndex n = dataset.size();
  order_.resize(n);
  for (PointIndex i = 0; i < n; ++i) {
    order_[i] = i;
  }
  if (n == 0) {
    return;
  }
  std::vector<int32_t> leaves;
  if (GlobalThreadPool() != nullptr && n >= kParallelBuildCutoff &&
      n > kFanout && dataset.dim() > 0) {
    BuildLeavesParallel(n, &leaves);
  } else {
    TileAndPack(0, n, 0, &nodes_, &leaves);
  }
  // Pack upper levels until a single root remains.
  std::vector<int32_t> level = std::move(leaves);
  while (level.size() > 1) {
    std::vector<int32_t> next;
    for (size_t i = 0; i < level.size(); i += kFanout) {
      const size_t end = std::min(level.size(), i + kFanout);
      std::vector<int32_t> group(level.begin() + i, level.begin() + end);
      next.push_back(PackLevel(group));
    }
    level = std::move(next);
  }
  root_ = level.front();
  // Leaf-order SoA copy for batched leaf scans; order_ is final here.
  view_ = simd::SoaBlockView(dataset, order_);
}

void RStarTree::TileAndPack(PointIndex begin, PointIndex end, int dim,
                            std::vector<Node>* nodes,
                            std::vector<int32_t>* leaves) {
  const PointIndex count = end - begin;
  if (count <= kFanout || dim >= dataset_.dim()) {
    // Terminal slab: emit leaves of up to kFanout consecutive points.
    for (PointIndex k = begin; k < end; k += kFanout) {
      leaves->push_back(MakeLeaf(k, std::min(end, k + kFanout), nodes));
    }
    return;
  }
  // STR: number of slabs along this dimension is ceil(P^(1/r)) where P is
  // the number of leaf pages in the slab and r the remaining dimensions.
  const int remaining = dataset_.dim() - dim;
  const double pages = std::ceil(static_cast<double>(count) / kFanout);
  const int slabs = std::max(
      1, static_cast<int>(std::ceil(std::pow(pages, 1.0 / remaining))));
  const PointIndex slab_size = (count + slabs - 1) / slabs;

  std::sort(order_.begin() + begin, order_.begin() + end,
            [this, dim](PointIndex a, PointIndex b) {
              return dataset_.at(a, dim) < dataset_.at(b, dim);
            });
  for (PointIndex k = begin; k < end; k += slab_size) {
    TileAndPack(k, std::min(end, k + slab_size), dim + 1, nodes, leaves);
  }
}

void RStarTree::BuildLeavesParallel(PointIndex n,
                                    std::vector<int32_t>* leaves) {
  // Mirror of the first TileAndPack level: sort once along dimension 0
  // (sequential — identical comparisons to the sequential build), then
  // tile each slab concurrently into its own arena.
  const int remaining = dataset_.dim();
  const double pages = std::ceil(static_cast<double>(n) / kFanout);
  const int slabs = std::max(
      1, static_cast<int>(std::ceil(std::pow(pages, 1.0 / remaining))));
  const PointIndex slab_size = (n + slabs - 1) / slabs;
  std::sort(order_.begin(), order_.end(),
            [this](PointIndex a, PointIndex b) {
              return dataset_.at(a, 0) < dataset_.at(b, 0);
            });

  struct SlabResult {
    std::vector<Node> arena;
    std::vector<int32_t> leaves;
  };
  const size_t num_slabs = static_cast<size_t>((n + slab_size - 1) / slab_size);
  std::vector<SlabResult> results(num_slabs);
  ParallelFor(num_slabs, 1, [&](size_t slab_begin, size_t slab_end) {
    for (size_t s = slab_begin; s < slab_end; ++s) {
      const PointIndex lo = static_cast<PointIndex>(s) * slab_size;
      const PointIndex hi = std::min(n, lo + slab_size);
      TileAndPack(lo, hi, 1, &results[s].arena, &results[s].leaves);
    }
  });

  // Splice arenas in slab order; leaves keep their sequential order.
  for (SlabResult& result : results) {
    const int32_t offset = static_cast<int32_t>(nodes_.size());
    for (Node& node : result.arena) {
      nodes_.push_back(std::move(node));  // Leaf-only arenas: no child ids.
    }
    for (const int32_t leaf : result.leaves) {
      leaves->push_back(leaf + offset);
    }
  }
}

int32_t RStarTree::MakeLeaf(PointIndex begin, PointIndex end,
                            std::vector<Node>* nodes) {
  const int32_t id = static_cast<int32_t>(nodes->size());
  nodes->emplace_back();
  Node& node = nodes->back();
  node.is_leaf = true;
  node.begin = begin;
  node.end = end;
  const int dim = dataset_.dim();
  node.mbr_min.assign(dim, std::numeric_limits<double>::infinity());
  node.mbr_max.assign(dim, -std::numeric_limits<double>::infinity());
  for (PointIndex k = begin; k < end; ++k) {
    const auto p = dataset_.point(order_[k]);
    for (int j = 0; j < dim; ++j) {
      if (p[j] < node.mbr_min[j]) node.mbr_min[j] = p[j];
      if (p[j] > node.mbr_max[j]) node.mbr_max[j] = p[j];
    }
  }
  return id;
}

int32_t RStarTree::PackLevel(const std::vector<int32_t>& level) {
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  Node& node = nodes_.back();
  node.is_leaf = false;
  node.children = level;
  const int dim = dataset_.dim();
  node.mbr_min.assign(dim, std::numeric_limits<double>::infinity());
  node.mbr_max.assign(dim, -std::numeric_limits<double>::infinity());
  for (const int32_t child : level) {
    for (int j = 0; j < dim; ++j) {
      node.mbr_min[j] = std::min(node.mbr_min[j], nodes_[child].mbr_min[j]);
      node.mbr_max[j] = std::max(node.mbr_max[j], nodes_[child].mbr_max[j]);
    }
  }
  return id;
}

double RStarTree::MbrSquaredDistance(const Node& node,
                                     std::span<const double> query) const {
  return simd::BoxSquaredDistance(query.data(), node.mbr_min.data(),
                                  node.mbr_max.data(), query.size());
}

template <typename Visitor>
void RStarTree::Visit(int32_t node_id, std::span<const double> query,
                      double eps_sq, Visitor&& visit) const {
  const Node& node = nodes_[node_id];
  if (MbrSquaredDistance(node, query) > eps_sq) {
    return;
  }
  if (node.is_leaf) {
    const size_t count = static_cast<size_t>(node.end - node.begin);
    CountDistanceComputations(count);
    simd::ScratchLease scratch(count);
    double* d2 = scratch.data();
    view_.SquaredDistances(query, static_cast<size_t>(node.begin),
                           static_cast<size_t>(node.end), d2);
    for (PointIndex k = node.begin; k < node.end; ++k) {
      const double dist_sq = d2[k - node.begin];
      if (dist_sq <= eps_sq) {
        visit(order_[k], dist_sq);
      }
    }
    return;
  }
  for (const int32_t child : node.children) {
    Visit(child, query, eps_sq, visit);
  }
}

PointIndex RStarTree::CountVisit(int32_t node_id,
                                 std::span<const double> query,
                                 double eps_sq) const {
  const Node& node = nodes_[node_id];
  if (MbrSquaredDistance(node, query) > eps_sq) {
    return 0;
  }
  if (node.is_leaf) {
    CountDistanceComputations(
        static_cast<uint64_t>(node.end - node.begin));
    return static_cast<PointIndex>(
        view_.CountWithin(query, static_cast<size_t>(node.begin),
                          static_cast<size_t>(node.end), eps_sq));
  }
  PointIndex count = 0;
  for (const int32_t child : node.children) {
    count += CountVisit(child, query, eps_sq);
  }
  return count;
}

void RStarTree::RangeQuery(std::span<const double> query, double epsilon,
                           std::vector<PointIndex>* out) const {
  out->clear();
  CountRangeQuery();
  if (root_ < 0) {
    return;
  }
  Visit(root_, query, epsilon * epsilon,
        [out](PointIndex i, double) { out->push_back(i); });
}

void RStarTree::RangeQueryWithDistances(std::span<const double> query,
                                        double epsilon,
                                        std::vector<PointIndex>* out,
                                        std::vector<double>* dist_sq) const {
  out->clear();
  dist_sq->clear();
  CountRangeQuery();
  if (root_ < 0) {
    return;
  }
  Visit(root_, query, epsilon * epsilon,
        [out, dist_sq](PointIndex i, double d2) {
          out->push_back(i);
          dist_sq->push_back(d2);
        });
}

PointIndex RStarTree::RangeCount(std::span<const double> query,
                                 double epsilon) const {
  CountRangeQuery();
  if (root_ < 0) {
    return 0;
  }
  return CountVisit(root_, query, epsilon * epsilon);
}

}  // namespace dbsvec
